package simnet

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/topo"
)

// msgKind discriminates inbox messages.
type msgKind int

const (
	msgLevel msgKind = iota
	msgUnicast
	msgBroadcast
)

// message is what travels over a link.
type message struct {
	kind msgKind

	// msgLevel fields. from is the dimension the message traveled along
	// and fromCoord the sender's coordinate in it, which together locate
	// the sender from the receiver's view (in a binary cube fromCoord is
	// simply the flipped bit).
	round     int
	from      int
	fromCoord int
	level     int

	// tag identifies a batch entry (0 = single-unicast mode).
	tag int

	// msgBroadcast: the dimensions the receiver's subtree spans (round
	// doubles as the delivery depth).
	dims []int

	// msgUnicast fields.
	dest   topo.NodeID
	path   topo.Path
	detour bool // the C3 spare hop was already taken
	// trace identifies the unicast attempt across every exchange it
	// causes: stamped at injection, copied onto every forwarded hop, and
	// reported back in UnicastResult.TraceID — the causal attribution
	// the flight recorder uses over the serving path.
	trace uint64
}

// ctrlKind discriminates engine-to-node commands.
type ctrlKind int

const (
	ctrlGS ctrlKind = iota
	ctrlGSAsync
	ctrlDie
)

type ctrlMsg struct {
	kind   ctrlKind
	rounds int
}

// UnicastResult reports a distributed unicast.
type UnicastResult struct {
	Outcome   core.Outcome
	Condition core.Condition
	Path      topo.Path
	// Hops is the number of link traversals of the unicast message.
	Hops int
	Err  error
	// TraceID is the engine-assigned ID of this unicast attempt
	// (1-based, monotonic per engine); every message exchanged on its
	// behalf carried it, so per-node logs are causally attributable.
	TraceID uint64
}

// node is the per-goroutine state. Everything here is owned by the
// node's goroutine during a phase; the engine touches it only between
// phases (after the phase WaitGroup settles).
type node struct {
	id    topo.NodeID
	eng   *Engine
	inbox chan message
	ctrl  chan ctrlMsg

	// coord[i] is this node's coordinate in dimension i; line[i][v] is
	// the node sharing all coordinates but the i-th, which is v (so
	// line[i][coord[i]] is the node itself). Built once at start-up,
	// read-only afterwards.
	coord []int
	line  [][]topo.NodeID

	level  int // own safety level (own view for N2 nodes)
	public int // level exposed to neighbors (0 for N2 nodes)
	// nbrLevel[i][v] is the last public level received from line[i][v]
	// (the own-coordinate slot is unused).
	nbrLevel [][]int
	reduced  []int // scratch: per-dimension sibling minima (Definition 4)

	sent       int // messages sent, all kinds
	lastChange int // last GS round in which level changed
	updates    int // async-mode level changes
	transited  int // unicast messages this node forwarded or delivered
	bcastDepth int // delivery depth of the current broadcast (-1 = none)
	bcastSent  int // broadcast sends in the current phase

	// Per-phase accounting for the observability layer. The engine zeroes
	// these between phases; the node increments them alongside sent.
	phaseSent  int   // messages sent this phase
	sentPerDim []int // per-dimension sends this phase (per-link cost)
	changed    []int // sync-GS rounds in which this node's level changed

	// stash holds early messages that arrive while the node is inside a
	// GS round loop (e.g. next-round levels).
	stash []message
}

// Engine owns a distributed hypercube instance.
type Engine struct {
	t   topo.Topology
	set *faults.Set

	nodes []*node // nil for faulty nodes
	wg    sync.WaitGroup

	// startwg and async coordinate the asynchronous GS phase; bcast
	// coordinates a broadcast phase.
	startwg sync.WaitGroup
	async   *asyncState
	bcast   *asyncState

	results chan UnicastResult
	// batchResults, when non-nil, receives tagged batch outcomes.
	batchResults chan taggedResult

	// gsRounds is the D used in the last RunGS.
	gsRounds int
	closed   bool

	// traceSeq allocates unicast trace IDs (1-based).
	traceSeq atomic.Uint64

	// obs, when non-nil, receives per-phase protocol-cost metrics and GS
	// traces. Set it between phases with SetObs.
	obs *obs.Registry
}

// SetObs attaches a metrics registry (nil detaches). Call it between
// phases only; a nil registry keeps all accounting overhead to plain
// integer increments that never cross a cache line contention point.
func (e *Engine) SetObs(r *obs.Registry) { e.obs = r }

// inboxCapacity sizes a node inbox for the worst case across both GS
// modes: the synchronous protocol needs at most two rounds of skew from
// each of the deg sending peers plus batch slack; the asynchronous
// protocol can have every peer push its whole descending level ladder
// (n levels plus the initial) before this node processes anything. For
// a binary cube (deg = n) this reduces to the historical
// (n+3)*(n+1)+2.
func inboxCapacity(t topo.Topology) int {
	dim, deg := t.Dim(), t.Degree()
	syncNeed := (deg+3)*(dim+1) + 2
	asyncNeed := deg*(dim+4) + 2
	if asyncNeed > syncNeed {
		return asyncNeed
	}
	return syncNeed
}

// New builds an engine over the given fault set and starts one goroutine
// per nonfaulty node. Callers must Close the engine to stop them.
func New(set *faults.Set) *Engine {
	t := set.Topology()
	e := &Engine{
		t:       t,
		set:     set,
		nodes:   make([]*node, t.Nodes()),
		results: make(chan UnicastResult, 4),
	}
	for a := 0; a < t.Nodes(); a++ {
		id := topo.NodeID(a)
		if set.NodeFaulty(id) {
			continue
		}
		e.nodes[a] = e.buildNode(id)
	}
	for _, n := range e.nodes {
		if n != nil {
			go n.run()
		}
	}
	return e
}

// buildNode constructs the goroutine state of one live node (its
// coordinate and sibling tables, inbox, and level registers). Used at
// start-up for every nonfaulty node and by ReviveNode for nodes
// rejoining after recovery; the caller starts the goroutine.
func (e *Engine) buildNode(id topo.NodeID) *node {
	t := e.t
	n := &node{
		id:         id,
		eng:        e,
		inbox:      make(chan message, inboxCapacity(t)),
		ctrl:       make(chan ctrlMsg, 1),
		coord:      make([]int, t.Dim()),
		line:       make([][]topo.NodeID, t.Dim()),
		level:      t.Dim(),
		public:     t.Dim(),
		nbrLevel:   make([][]int, t.Dim()),
		reduced:    make([]int, t.Dim()),
		sentPerDim: make([]int, t.Dim()),
	}
	var sibs []topo.NodeID
	for i := 0; i < t.Dim(); i++ {
		n.coord[i] = t.Coord(id, i)
		n.line[i] = make([]topo.NodeID, t.Radix(i))
		n.line[i][n.coord[i]] = id
		sibs = t.Siblings(id, i, sibs[:0])
		for _, b := range sibs {
			n.line[i][t.Coord(b, i)] = b
		}
		n.nbrLevel[i] = make([]int, t.Radix(i))
	}
	return n
}

// Topology returns the topology the engine runs on.
func (e *Engine) Topology() topo.Topology { return e.t }

// Cube returns the binary-hypercube topology; it panics when the engine
// runs on a generalized hypercube (use Topology then).
func (e *Engine) Cube() *topo.Cube {
	c, ok := e.t.(*topo.Cube)
	if !ok {
		panic("simnet: engine is not over a binary cube")
	}
	return c
}

// MessagesSent returns the total messages sent by all live nodes so far.
// Call it only between phases.
func (e *Engine) MessagesSent() int {
	total := 0
	for _, n := range e.nodes {
		if n != nil {
			total += n.sent
		}
	}
	return total
}

// StableRound returns the last GS round in which any node's level
// changed — the distributed analogue of core.Assignment.Rounds. Call it
// only after RunGS.
func (e *Engine) StableRound() int {
	r := 0
	for _, n := range e.nodes {
		if n != nil && n.lastChange > r {
			r = n.lastChange
		}
	}
	return r
}

// Levels snapshots the public level of every node (0 for faulty nodes).
// Call it only between phases.
func (e *Engine) Levels() []int {
	out := make([]int, e.t.Nodes())
	for a, n := range e.nodes {
		if n != nil {
			out[a] = n.public
		}
	}
	return out
}

// OwnLevels snapshots each node's own-view level (differs from Levels
// only for N2 nodes). Call it only between phases.
func (e *Engine) OwnLevels() []int {
	out := make([]int, e.t.Nodes())
	for a, n := range e.nodes {
		if n != nil {
			out[a] = n.level
		}
	}
	return out
}

// resetPhaseCounters zeroes the per-phase observability accounting.
// Engine-side only, between phases (the ctrl-channel send that starts
// the next phase establishes the happens-before edge).
func (e *Engine) resetPhaseCounters() {
	for _, n := range e.nodes {
		if n == nil {
			continue
		}
		n.phaseSent = 0
		for i := range n.sentPerDim {
			n.sentPerDim[i] = 0
		}
		n.changed = n.changed[:0]
	}
}

// countSend is the accounting companion of every message send.
func (n *node) countSend(dim int) {
	n.sent++
	n.phaseSent++
	n.sentPerDim[dim]++
}

// phaseMessages sums the messages sent during the current phase.
func (e *Engine) phaseMessages() int {
	total := 0
	for _, n := range e.nodes {
		if n != nil {
			total += n.phaseSent
		}
	}
	return total
}

// recordGS publishes the cost of the GS phase that just ended: a GSTrace
// (rounds, per-round deltas, per-link message counts) plus the aggregate
// counters. No-op without a registry.
func (e *Engine) recordGS(kind string, rounds, updates int) {
	if e.obs == nil {
		return
	}
	t := &obs.GSTrace{
		Kind:       kind,
		Topo:       fmt.Sprint(e.t),
		Dim:        e.t.Dim(),
		NodeFaults: e.set.NodeFaults(),
		LinkFaults: e.set.LinkFaults(),
		Rounds:     rounds,
		Updates:    updates,
		Messages:   e.phaseMessages(),
	}
	for _, n := range e.nodes {
		if n == nil {
			continue
		}
		for _, r := range n.changed {
			for len(t.Deltas) < r {
				t.Deltas = append(t.Deltas, 0)
			}
			t.Deltas[r-1]++
		}
	}
	// Per-link counts need a one-neighbor-per-dimension topology (sends
	// are accounted per dimension, and a GH dimension spans several
	// links), so they are reported for binary cubes only. The full map
	// is kept only for small cubes; the busiest-link maximum is always
	// computed.
	if bin, ok := e.t.(*topo.Cube); ok {
		small := bin.Nodes() <= 256
		if small {
			t.PerLink = make(map[string]int)
		}
		for a, n := range e.nodes {
			if n == nil {
				continue
			}
			id := topo.NodeID(a)
			for i, cnt := range n.sentPerDim {
				b := bin.Neighbor(id, i)
				if b < id {
					continue // count each undirected link once, from its low end
				}
				total := cnt
				if peer := e.nodes[b]; peer != nil {
					total += peer.sentPerDim[i]
				}
				if total == 0 {
					continue
				}
				if total > t.MaxLinkMessages {
					t.MaxLinkMessages = total
				}
				if small {
					t.PerLink[bin.Format(id)+"-"+bin.Format(b)] = total
				}
			}
		}
	}
	e.obs.RecordGS(t)
	e.obs.Counter("simnet_gs_runs_total").Inc()
	e.obs.Counter("simnet_gs_messages_total").Add(int64(t.Messages))
	e.obs.Gauge("simnet_gs_last_rounds").Set(int64(rounds))
	e.obs.Gauge("simnet_gs_last_max_link_messages").Set(int64(t.MaxLinkMessages))
	e.obs.Histogram("simnet_gs_rounds").Observe(int64(rounds))
	if updates > 0 {
		e.obs.Counter("simnet_gs_updates_total").Add(int64(updates))
	}
}

// RunGS executes the distributed GLOBAL_STATUS algorithm for rounds
// rounds (0 means the Corollary bound n-1). It blocks until every live
// node has finished the phase.
func (e *Engine) RunGS(rounds int) {
	if rounds <= 0 {
		rounds = e.t.Dim() - 1
		if rounds < 1 {
			rounds = 1
		}
	}
	e.gsRounds = rounds
	e.resetPhaseCounters()
	for _, n := range e.nodes {
		if n == nil {
			continue
		}
		e.wg.Add(1)
		n.ctrl <- ctrlMsg{kind: ctrlGS, rounds: rounds}
	}
	e.wg.Wait()
	e.recordGS("simnet-sync", e.StableRound(), 0)
}

// KillNode marks a node fail-stop faulty between phases, stopping its
// goroutine. Neighbors observe the failure through the shared fault
// oracle (the paper's assumption 2: fault detection exists). Following
// the state-change-driven strategy, callers should RunGS again.
func (e *Engine) KillNode(a topo.NodeID) error {
	n := e.nodes[a]
	if n == nil {
		return fmt.Errorf("simnet: node %d already dead", a)
	}
	if err := e.set.FailNode(a); err != nil {
		return err
	}
	e.wg.Add(1)
	n.ctrl <- ctrlMsg{kind: ctrlDie}
	e.wg.Wait()
	e.nodes[a] = nil
	return nil
}

// Unicast routes a message from s to d through the live node goroutines
// and blocks until the attempt resolves. Both endpoints must be
// nonfaulty. Run a GS phase first so levels are in place.
func (e *Engine) Unicast(s, d topo.NodeID) UnicastResult {
	if !e.t.Contains(s) || !e.t.Contains(d) {
		return UnicastResult{Outcome: core.Failure, Err: fmt.Errorf("simnet: node outside cube")}
	}
	src := e.nodes[s]
	if src == nil {
		return UnicastResult{Outcome: core.Failure, Err: fmt.Errorf("simnet: source %s is faulty", e.t.Format(s))}
	}
	if e.nodes[d] == nil {
		return UnicastResult{Outcome: core.Failure, Err: fmt.Errorf("simnet: destination %s is faulty", e.t.Format(d))}
	}
	e.resetPhaseCounters()
	src.inbox <- message{
		kind:  msgUnicast,
		dest:  d,
		path:  topo.Path{s},
		trace: e.nextTrace(),
	}
	res := <-e.results
	if e.obs != nil {
		e.obs.Counter("simnet_unicasts_total").Inc()
		e.obs.Counter("simnet_unicast_messages_total").Add(int64(e.phaseMessages()))
		if res.Outcome != core.Failure {
			e.obs.Counter("simnet_delivered_total").Inc()
		}
	}
	return res
}

// nextTrace allocates the ID the next injected unicast travels under.
func (e *Engine) nextTrace() uint64 { return e.traceSeq.Add(1) }

// Close stops every live goroutine. The engine is unusable afterwards.
func (e *Engine) Close() {
	if e.closed {
		return
	}
	e.closed = true
	for a, n := range e.nodes {
		if n == nil {
			continue
		}
		e.wg.Add(1)
		n.ctrl <- ctrlMsg{kind: ctrlDie}
		e.nodes[a] = nil
	}
	e.wg.Wait()
}

// ---------------------------------------------------------------------
// Node goroutine.
// ---------------------------------------------------------------------

func (n *node) run() {
	for {
		select {
		case cmd := <-n.ctrl:
			switch cmd.kind {
			case ctrlGS:
				n.runGS(cmd.rounds)
				n.eng.wg.Done()
			case ctrlGSAsync:
				n.runGSAsync(n.eng.async)
				n.eng.wg.Done()
			case ctrlDie:
				n.eng.wg.Done()
				return
			}
		case m := <-n.inbox:
			switch m.kind {
			case msgUnicast:
				n.forward(m)
			case msgBroadcast:
				n.handleBroadcast(m, n.eng.bcast)
			default:
				// A neighbor that received its ctrlGS first may already
				// be sending round-1 levels before this node has seen
				// its own ctrlGS. Stash the message; runGS drains the
				// stash first.
				n.stash = append(n.stash, m)
			}
		}
	}
}

// gsPeers counts the siblings that will send GS levels to this node:
// healthy link, nonfaulty far end, far end not in N2. inN2 reports
// whether this node itself has an adjacent faulty link.
func (n *node) gsPeers() (peers int, inN2 bool) {
	e := n.eng
	for i := range n.line {
		for v, b := range n.line[i] {
			if v == n.coord[i] {
				continue
			}
			if e.set.LinkFaulty(n.id, b) {
				inN2 = true
				continue
			}
			if e.set.NodeFaulty(b) {
				continue
			}
			if len(e.set.AdjacentFaultyLinks(b)) > 0 {
				// N2 neighbors broadcast nothing; their public level is 0.
				continue
			}
			peers++
		}
	}
	return peers, inN2
}

// levelNow evaluates this node's safety level from the received sibling
// levels: each dimension reduces to its sibling minimum (Definition 4 —
// the identity reduction in a binary cube) and Definition 1 runs on the
// n reduced values.
func (n *node) levelNow(scratch []int) int {
	for i := range n.nbrLevel {
		min := -1
		for v, lv := range n.nbrLevel[i] {
			if v == n.coord[i] {
				continue
			}
			if min < 0 || lv < min {
				min = lv
			}
		}
		n.reduced[i] = min
	}
	return core.LevelFromNeighbors(n.reduced, scratch)
}

// initNbrLevels (re-)initializes the received-level table the way the
// algorithm's first exchange would observe it: 0 across faulty links,
// for faulty siblings, and for (publicly silent) N2 siblings; n
// otherwise.
func (n *node) initNbrLevels() {
	e, dim := n.eng, n.eng.t.Dim()
	for i := range n.nbrLevel {
		for v, b := range n.line[i] {
			if v == n.coord[i] {
				n.nbrLevel[i][v] = dim // unused slot
				continue
			}
			if e.set.LinkFaulty(n.id, b) || e.set.NodeFaulty(b) || len(e.set.AdjacentFaultyLinks(b)) > 0 {
				n.nbrLevel[i][v] = 0
			} else {
				n.nbrLevel[i][v] = dim
			}
		}
	}
}

// runGS executes the node's part of GLOBAL_STATUS / EXTENDED_GLOBAL_STATUS.
func (n *node) runGS(rounds int) {
	e, dim := n.eng, n.eng.t.Dim()
	peers, inN2 := n.gsPeers()

	// (Re-)initialize: nonfaulty nodes restart from level n (the
	// algorithm's initialization); N2 nodes declare themselves 0.
	n.level, n.public = dim, dim
	if inN2 {
		n.level, n.public = 0, 0
	}
	n.lastChange = 0
	n.updates = 0
	n.initNbrLevels()

	scratch := make([]int, dim+1) // LevelFromNeighbors counting buckets
	for r := 1; r <= rounds; r++ {
		// Send current public level to peers over healthy links. N2
		// nodes stay silent (they already declared level 0), but N1
		// nodes still send to nonfaulty neighbors in N2 so those can
		// run NODE_STATUS once in the last round (EGS).
		if !inN2 {
			for i := range n.line {
				for v, b := range n.line[i] {
					if v == n.coord[i] || e.set.LinkFaulty(n.id, b) || e.set.NodeFaulty(b) {
						continue
					}
					peer := e.nodes[b]
					if peer == nil {
						continue
					}
					peer.inbox <- message{kind: msgLevel, round: r, from: i, fromCoord: n.coord[i], level: n.public}
					n.countSend(i)
				}
			}
		}
		// Receive one level per sending peer for this round. Peers are
		// exactly the N1 siblings over healthy links. Matching
		// messages may already sit in the stash (stored while this
		// node had not yet entered the phase, or from one round of
		// skew); scan it once, then block on the inbox — messages from
		// the next round go back to the stash.
		got := 0
		kept := n.stash[:0]
		for _, m := range n.stash {
			if m.kind == msgLevel && m.round == r {
				n.nbrLevel[m.from][m.fromCoord] = m.level
				got++
			} else {
				kept = append(kept, m)
			}
		}
		n.stash = kept
		for got < peers {
			m := <-n.inbox
			if m.kind != msgLevel || m.round != r {
				n.stash = append(n.stash, m)
				continue
			}
			n.nbrLevel[m.from][m.fromCoord] = m.level
			got++
		}
		// N2 nodes run NODE_STATUS once, in the last round, treating
		// the far ends of their faulty links as faulty (level 0); N1
		// nodes update every round.
		if inN2 {
			if r == rounds {
				n.level = n.levelNow(scratch)
				n.lastChange = r
				n.changed = append(n.changed, r)
			}
			continue
		}
		nl := n.levelNow(scratch)
		if nl != n.level {
			n.level = nl
			n.public = nl
			n.lastChange = r
			n.changed = append(n.changed, r)
		}
	}
}

// forward implements the unicasting algorithms of Section 3.2 with only
// local knowledge: the node's own level, its neighbors' public levels
// (collected during GS), and the fault status of its neighbors.
func (n *node) forward(m message) {
	n.transited++
	if m.dest == n.id {
		// UNICASTING_AT_INTERMEDIATE_NODE: N = 0 -> this is the
		// destination.
		n.report(m, UnicastResult{
			Outcome:   classify(m),
			Condition: condOf(m),
			Path:      m.path,
			Hops:      m.path.Len(),
		})
		return
	}
	if len(m.path) == 1 && m.path[0] == n.id {
		n.sourceForward(m)
		return
	}
	n.intermediateForward(m)
}

// classify recovers the outcome class from the traveled path.
func classify(m message) core.Outcome {
	if m.detour {
		return core.Suboptimal
	}
	return core.Optimal
}

func condOf(m message) core.Condition {
	if m.detour {
		return core.CondC3
	}
	// C1 and C2 are indistinguishable from the trace; the engine-level
	// tests recover the precise condition from core.Router. Report C1
	// as the representative optimal condition.
	return core.CondC1
}

// sourceForward implements UNICASTING_AT_SOURCE_NODE.
func (n *node) sourceForward(m message) {
	e, t := n.eng, n.eng.t
	h := t.Distance(n.id, m.dest)
	// C1: own level covers the distance. (Section 4.1: the far end of
	// an adjacent faulty link is excluded from the own-level guarantee.)
	deadLinkDest := h == 1 && e.set.LinkFaulty(n.id, m.dest)
	if !deadLinkDest {
		if n.level >= h {
			n.sendPreferred(m, false)
			return
		}
		// C2: a preferred neighbor with level >= H-1.
		for i := 0; i < t.Dim(); i++ {
			if dc := t.Coord(m.dest, i); dc != n.coord[i] && n.observedLevelAt(i, dc) >= h-1 {
				n.sendPreferred(m, false)
				return
			}
		}
	}
	// C3: a spare neighbor with level >= H+1 (strict improvement keeps
	// the lowest-dimension, lowest-coordinate winner, matching the
	// sequential router's tie-break).
	best, dim, bestCoord := -1, -1, -1
	for i := 0; i < t.Dim(); i++ {
		if t.Coord(m.dest, i) != n.coord[i] {
			continue
		}
		for v := range n.line[i] {
			if v == n.coord[i] {
				continue
			}
			if lv := n.observedLevelAt(i, v); lv >= h+1 && lv > best {
				best, dim, bestCoord = lv, i, v
			}
		}
	}
	if dim >= 0 {
		n.send(m, dim, n.line[dim][bestCoord], true)
		return
	}
	n.report(m, UnicastResult{
		Outcome:   core.Failure,
		Condition: core.CondNone,
		Path:      m.path,
	})
}

// observedLevelAt is the level of the sibling with coordinate v along
// dim as this node observes it: 0 across a faulty link or for a faulty
// node, else the last level received in GS.
func (n *node) observedLevelAt(dim, v int) int {
	e := n.eng
	b := n.line[dim][v]
	if e.set.LinkFaulty(n.id, b) || e.set.NodeFaulty(b) {
		return 0
	}
	return n.nbrLevel[dim][v]
}

// observedDimLevel reduces dimension dim to its observed sibling
// minimum — the per-dimension value of Definition 4.
func (n *node) observedDimLevel(dim int) int {
	min := -1
	for v := range n.line[dim] {
		if v == n.coord[dim] {
			continue
		}
		if lv := n.observedLevelAt(dim, v); min < 0 || lv < min {
			min = lv
		}
	}
	return min
}

// intermediateForward implements UNICASTING_AT_INTERMEDIATE_NODE.
func (n *node) intermediateForward(m message) {
	n.sendPreferred(m, false)
}

// sendPreferred forwards to the preferred neighbor with the highest
// observed level (LowestDim tie-break), delivering the final hop
// unconditionally over a healthy link. In a generalized hypercube the
// preferred candidate along a dimension is the sibling already holding
// the destination's coordinate (Section 4.2: one hop crosses the whole
// dimension).
func (n *node) sendPreferred(m message, detour bool) {
	e, t := n.eng, n.eng.t
	if t.Distance(n.id, m.dest) == 1 {
		if !e.set.LinkFaulty(n.id, m.dest) && e.nodes[m.dest] != nil {
			n.send(m, t.LinkDim(n.id, m.dest), m.dest, detour)
			return
		}
		n.report(m, UnicastResult{
			Outcome: core.Failure,
			Path:    m.path,
			Err:     fmt.Errorf("simnet: %s cannot deliver final hop", t.Format(n.id)),
		})
		return
	}
	best, dim, bestNode := -1, -1, topo.NodeID(0)
	for i := 0; i < t.Dim(); i++ {
		dc := t.Coord(m.dest, i)
		if dc == n.coord[i] {
			continue
		}
		b := n.line[i][dc]
		if e.set.NodeFaulty(b) || e.set.LinkFaulty(n.id, b) {
			continue
		}
		if lv := n.nbrLevel[i][dc]; lv > best {
			best, dim, bestNode = lv, i, b
		}
	}
	if dim < 0 {
		n.report(m, UnicastResult{
			Outcome: core.Failure,
			Path:    m.path,
			Err:     fmt.Errorf("simnet: %s has no usable preferred neighbor", t.Format(n.id)),
		})
		return
	}
	n.send(m, dim, bestNode, detour)
}

// send moves the unicast one hop along dim to sibling b.
func (n *node) send(m message, dim int, b topo.NodeID, markDetour bool) {
	e := n.eng
	next := message{
		kind:   msgUnicast,
		tag:    m.tag,
		dest:   m.dest,
		path:   append(append(topo.Path{}, m.path...), b),
		detour: m.detour || markDetour,
		trace:  m.trace,
	}
	peer := e.nodes[b]
	if peer == nil {
		// Final hop into a faulty destination cannot happen here: the
		// engine rejects faulty destinations up front.
		n.report(m, UnicastResult{
			Outcome: core.Failure,
			Path:    m.path,
			Err:     fmt.Errorf("simnet: hop into dead node %s", e.t.Format(b)),
		})
		return
	}
	n.countSend(dim)
	peer.inbox <- next
}

// report routes a unicast outcome to the right collector: the batch
// channel for tagged messages, the single-unicast channel otherwise.
func (n *node) report(m message, res UnicastResult) {
	res.TraceID = m.trace
	if m.tag != 0 {
		n.eng.batchResults <- taggedResult{tag: m.tag, res: res}
		return
	}
	n.eng.results <- res
}
