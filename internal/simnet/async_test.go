package simnet

import (
	"testing"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/stats"
	"repro/internal/topo"
)

func TestAsyncGSMatchesSequential(t *testing.T) {
	rng := stats.NewRNG(13579)
	for n := 2; n <= 7; n++ {
		c := topo.MustCube(n)
		for trial := 0; trial < 10; trial++ {
			s := faults.NewSet(c)
			faults.InjectUniform(s, rng, rng.Intn(c.Nodes()/2))
			want := core.Compute(s, core.Options{})

			e := New(s)
			e.RunGSAsync()
			got := e.Levels()
			for a := 0; a < c.Nodes(); a++ {
				if got[a] != want.Level(topo.NodeID(a)) {
					t.Fatalf("n=%d trial %d: async S(%s) = %d, sequential %d (faults %s)",
						n, trial, c.Format(topo.NodeID(a)), got[a], want.Level(topo.NodeID(a)), s)
				}
			}
			e.Close()
		}
	}
}

func TestAsyncGSFig1(t *testing.T) {
	s := fig1Set(t)
	c := s.Cube()
	e := New(s)
	defer e.Close()
	e.RunGSAsync()
	lv := e.Levels()
	want := map[string]int{"0000": 2, "0101": 2, "0001": 1, "1000": 4}
	for addr, w := range want {
		if got := lv[c.MustParse(addr)]; got != w {
			t.Errorf("S(%s) = %d, want %d", addr, got, w)
		}
	}
}

func TestAsyncGSFaultFreeMinimalTraffic(t *testing.T) {
	// In a fault-free cube no level ever changes, so the async protocol
	// sends exactly the initial push: one message per directed link.
	c := topo.MustCube(5)
	s := faults.NewSet(c)
	e := New(s)
	defer e.Close()
	e.RunGSAsync()
	want := c.Nodes() * c.Dim()
	if got := e.MessagesSent(); got != want {
		t.Errorf("async messages = %d, want %d (one per directed link)", got, want)
	}
	if e.Updates() != 0 {
		t.Errorf("updates = %d, want 0", e.Updates())
	}
	// The synchronous protocol would have sent (n-1)x that traffic:
	// the async mode realizes the paper's demand-driven saving.
	e2 := New(faults.NewSet(c))
	defer e2.Close()
	e2.RunGS(0)
	if e2.MessagesSent() <= e.MessagesSent() {
		t.Errorf("sync GS (%d msgs) should cost more than async (%d) on a stable cube",
			e2.MessagesSent(), e.MessagesSent())
	}
}

func TestAsyncGSWithLinkFaults(t *testing.T) {
	// Fig. 4 on the async engine: public and own views must match the
	// sequential EGS fixpoint.
	c := topo.MustCube(4)
	s := faults.NewSet(c)
	if err := s.FailNodes(c.MustParseAll("0000", "0100", "1100", "1110")...); err != nil {
		t.Fatal(err)
	}
	if err := s.FailLink(c.MustParse("1000"), c.MustParse("1001")); err != nil {
		t.Fatal(err)
	}
	e := New(s)
	defer e.Close()
	e.RunGSAsync()
	want := core.Compute(s, core.Options{})
	pub, own := e.Levels(), e.OwnLevels()
	for a := 0; a < c.Nodes(); a++ {
		id := topo.NodeID(a)
		if pub[a] != want.Level(id) || own[a] != want.OwnLevel(id) {
			t.Errorf("node %s: async %d/%d, sequential %d/%d",
				c.Format(id), pub[a], own[a], want.Level(id), want.OwnLevel(id))
		}
	}
}

func TestAsyncGSThenUnicast(t *testing.T) {
	// Routing after an async phase behaves identically to after a sync
	// phase.
	s := fig1Set(t)
	c := s.Cube()
	e := New(s)
	defer e.Close()
	e.RunGSAsync()
	res := e.Unicast(c.MustParse("1110"), c.MustParse("0001"))
	if res.Outcome != core.Optimal || res.Path.FormatWith(c) != "1110 -> 1111 -> 1101 -> 0101 -> 0001" {
		t.Errorf("route after async GS: %v %s", res.Outcome, res.Path.FormatWith(c))
	}
}

func TestAsyncGSRepeatedPhases(t *testing.T) {
	// Alternate sync and async phases; levels must stay at the fixpoint.
	s := fig1Set(t)
	e := New(s)
	defer e.Close()
	e.RunGSAsync()
	first := e.Levels()
	e.RunGS(0)
	second := e.Levels()
	e.RunGSAsync()
	third := e.Levels()
	for a := range first {
		if first[a] != second[a] || second[a] != third[a] {
			t.Fatalf("levels drift across phases at node %d: %d %d %d",
				a, first[a], second[a], third[a])
		}
	}
}

func TestAsyncGSAfterKill(t *testing.T) {
	// State-change-driven maintenance with the async protocol.
	c := topo.MustCube(5)
	s := faults.NewSet(c)
	rng := stats.NewRNG(24680)
	faults.InjectUniform(s, rng, 4)
	e := New(s)
	defer e.Close()
	e.RunGSAsync()
	var victim topo.NodeID
	for {
		victim = topo.NodeID(rng.Intn(c.Nodes()))
		if !s.NodeFaulty(victim) {
			break
		}
	}
	if err := e.KillNode(victim); err != nil {
		t.Fatal(err)
	}
	e.RunGSAsync()
	want := core.Compute(s, core.Options{})
	for a, lv := range e.Levels() {
		if lv != want.Level(topo.NodeID(a)) {
			t.Fatalf("after kill: async S(%s) = %d, want %d",
				c.Format(topo.NodeID(a)), lv, want.Level(topo.NodeID(a)))
		}
	}
}

func TestAsyncGSAllFaulty(t *testing.T) {
	// Degenerate: every node faulty — the phase must return immediately.
	c := topo.MustCube(3)
	s := faults.NewSet(c)
	for a := 0; a < c.Nodes(); a++ {
		s.FailNode(topo.NodeID(a))
	}
	e := New(s)
	defer e.Close()
	e.RunGSAsync() // must not hang
	for _, lv := range e.Levels() {
		if lv != 0 {
			t.Error("all-faulty cube should have all-zero levels")
		}
	}
}

func TestAsyncUpdatesBounded(t *testing.T) {
	// Levels only decrease, so each node changes value at most n times.
	rng := stats.NewRNG(97531)
	c := topo.MustCube(6)
	for trial := 0; trial < 10; trial++ {
		s := faults.NewSet(c)
		faults.InjectUniform(s, rng, rng.Intn(20))
		e := New(s)
		e.RunGSAsync()
		if e.Updates() > c.Nodes()*c.Dim() {
			t.Errorf("updates = %d exceeds the monotonicity bound", e.Updates())
		}
		e.Close()
	}
}
