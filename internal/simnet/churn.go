package simnet

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/stats"
	"repro/internal/topo"
)

// Fault churn on the distributed substrate: fail/recover events applied
// between protocol phases, each followed by a GS exchange so the live
// nodes re-agree on safety levels before traffic resumes. This is the
// message-passing counterpart of the incremental repair in internal/core
// — the sequential repair patches a level table, the simnet churn mode
// re-runs the distributed agreement, and the churn tests pin both to the
// same unique fixpoint.

// ReviveNode brings a faulty node back between phases: it recovers the
// node in the shared fault oracle (which also clears any link faults
// recorded against the node while it was down — see
// faults.Set.RecoverNode), rebuilds the goroutine state, and starts it.
// The revived node rejoins with the standard initial level; the next GS
// phase folds it back into the fixpoint, following the paper's
// state-change-driven update strategy (Section 2.2).
func (e *Engine) ReviveNode(a topo.NodeID) error {
	if !e.t.Contains(a) {
		return fmt.Errorf("simnet: node %d outside cube", a)
	}
	if e.nodes[a] != nil {
		return fmt.Errorf("simnet: node %s already alive", e.t.Format(a))
	}
	if !e.set.NodeFaulty(a) {
		return fmt.Errorf("simnet: node %s not faulty in the oracle", e.t.Format(a))
	}
	if err := e.set.RecoverNode(a); err != nil {
		return err
	}
	n := e.buildNode(a)
	e.nodes[a] = n
	go n.run()
	if e.obs != nil {
		e.obs.Counter("simnet_revives_total").Inc()
	}
	return nil
}

// Apply executes one churn event against the engine between phases:
// node events kill or revive goroutines, link events mutate the shared
// fault oracle (the affected endpoints observe them at the next phase).
func (e *Engine) Apply(ev faults.ChurnEvent) error {
	switch ev.Kind {
	case faults.DeltaFailNode:
		return e.KillNode(ev.A)
	case faults.DeltaRecoverNode:
		return e.ReviveNode(ev.A)
	case faults.DeltaFailLink:
		return e.set.FailLink(ev.A, ev.B)
	case faults.DeltaRecoverLink:
		return e.set.RecoverLink(ev.A, ev.B)
	}
	return fmt.Errorf("simnet: unknown churn event kind %d", ev.Kind)
}

// ChurnRunOptions tune RunChurn. The zero value runs the synchronous
// protocol with the Corollary round bound and no unicast traffic.
type ChurnRunOptions struct {
	// Async selects the asynchronous (demand-driven) GS protocol for the
	// post-event exchanges — the natural fit for churn, since quiescence
	// detection charges only the messages the delta actually triggers.
	Async bool
	// Rounds is the synchronous round budget (0 = n-1). Ignored when
	// Async is set.
	Rounds int
	// Unicasts routes this many random live-pair unicasts after each
	// exchange, verifying every produced path hop-by-hop against the
	// current fault state.
	Unicasts int
	// Seed drives the unicast pair selection (deterministic).
	Seed uint64
}

// ChurnStep reports one event of a churn run after its GS exchange.
type ChurnStep struct {
	Event faults.ChurnEvent
	// Levels and OwnLevels snapshot the post-exchange agreement (0 for
	// faulty nodes), comparable 1:1 with core.Compute on the same fault
	// state.
	Levels    []int
	OwnLevels []int
	// Messages is the message cost of this step's GS exchange.
	Messages int
	// Rounds is the last round any level changed (synchronous mode);
	// Updates is the number of effective level changes (asynchronous
	// mode).
	Rounds  int
	Updates int
	// Unicast outcome tallies for this step.
	Delivered, Failed int
}

// ChurnReport aggregates a RunChurn execution.
type ChurnReport struct {
	Steps []ChurnStep
	// GSMessages totals the per-step exchange costs.
	GSMessages int
}

// RunChurn replays a churn schedule on the live engine: apply an event,
// run a GS exchange, optionally route verification traffic, snapshot the
// agreement — once per event. It stops at the first infeasible event or
// illegal routed path; a returned error is a bug in the protocol stack,
// not noise.
func (e *Engine) RunChurn(events []faults.ChurnEvent, opts ChurnRunOptions) (*ChurnReport, error) {
	rng := stats.NewRNG(opts.Seed ^ 0xda942042e4dd58b5)
	rep := &ChurnReport{Steps: make([]ChurnStep, 0, len(events))}
	for i, ev := range events {
		if err := e.Apply(ev); err != nil {
			return nil, fmt.Errorf("simnet: churn step %d apply %v: %v", i, ev, err)
		}
		before := e.MessagesSent()
		if opts.Async {
			e.RunGSAsync()
		} else {
			e.RunGS(opts.Rounds)
		}
		step := ChurnStep{
			Event:     ev,
			Levels:    e.Levels(),
			OwnLevels: e.OwnLevels(),
			Messages:  e.MessagesSent() - before,
		}
		if opts.Async {
			step.Updates = e.Updates()
		} else {
			step.Rounds = e.StableRound()
		}
		for u := 0; u < opts.Unicasts; u++ {
			src, okS := e.randomLive(rng)
			dst, okD := e.randomLive(rng)
			if !okS || !okD || src == dst {
				continue
			}
			res := e.Unicast(src, dst)
			if res.Outcome == core.Failure {
				step.Failed++
				continue
			}
			step.Delivered++
			if err := e.checkPathLegal(res.Path); err != nil {
				return nil, fmt.Errorf("simnet: churn step %d unicast %s->%s: %v",
					i, e.t.Format(src), e.t.Format(dst), err)
			}
		}
		rep.GSMessages += step.Messages
		rep.Steps = append(rep.Steps, step)
		if e.obs != nil {
			e.obs.Counter("simnet_churn_events_total").Inc()
			e.obs.Counter("simnet_churn_messages_total").Add(int64(step.Messages))
			e.obs.Gauge("simnet_churn_node_faults").Set(int64(e.set.NodeFaults()))
			e.obs.Gauge("simnet_churn_link_faults").Set(int64(e.set.LinkFaults()))
		}
	}
	return rep, nil
}

// randomLive draws a uniformly random live node.
func (e *Engine) randomLive(rng *stats.RNG) (topo.NodeID, bool) {
	alive := e.t.Nodes() - e.set.NodeFaults()
	if alive <= 0 {
		return 0, false
	}
	k := rng.Intn(alive)
	for a, n := range e.nodes {
		if n == nil {
			continue
		}
		if k == 0 {
			return topo.NodeID(a), true
		}
		k--
	}
	return 0, false
}

// checkPathLegal verifies a routed path hop by hop against the current
// fault state: adjacent hops, no faulty node, no faulty link.
func (e *Engine) checkPathLegal(path topo.Path) error {
	if len(path) == 0 {
		return fmt.Errorf("empty path")
	}
	for i, a := range path {
		if e.set.NodeFaulty(a) {
			return fmt.Errorf("hop %d visits faulty node %s", i, e.t.Format(a))
		}
		if i == 0 {
			continue
		}
		if !e.t.Adjacent(path[i-1], a) {
			return fmt.Errorf("hop %d not adjacent to predecessor", i)
		}
		if e.set.LinkFaulty(path[i-1], a) {
			return fmt.Errorf("hop %d traverses faulty link (%s,%s)",
				i, e.t.Format(path[i-1]), e.t.Format(a))
		}
	}
	return nil
}
