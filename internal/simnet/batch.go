package simnet

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/topo"
)

// Batch unicasting: many messages in flight at once, forwarded
// concurrently by the node goroutines. Unlike Unicast (one message at a
// time), a batch exercises real interleaving: a node serializes the
// forwarding decisions of every message that transits it, so per-node
// transit counts measure congestion under a traffic pattern.

// Pair is one unicast request of a batch.
type Pair struct {
	Src, Dst topo.NodeID
}

// BatchResult is the outcome of one batch entry, in request order.
type BatchResult struct {
	Pair Pair
	UnicastResult
}

// BatchStats aggregates a batch run.
type BatchStats struct {
	Results []BatchResult
	// Delivered counts results that reached their destination.
	Delivered int
	// MaxTransit is the largest number of unicast messages any single
	// node forwarded or delivered — the congestion hotspot measure.
	MaxTransit int
	// TotalHops is the sum of hops over delivered messages.
	TotalHops int
}

// MaxBatch returns the largest batch size the engine can route
// concurrently without risking inbox overflow (each node must be able
// to hold every in-flight message plus GS slack).
func (e *Engine) MaxBatch() int {
	// Inbox capacity minus two rounds of synchronous-GS skew reserved at
	// construction (deg peers each one round ahead, plus the phase edge).
	return inboxCapacity(e.t) - (2*e.t.Degree() + 2)
}

// UnicastBatch routes all pairs concurrently and blocks until every
// message resolves. Requests with a faulty endpoint resolve immediately
// as failures. Run a GS phase first. The batch size is limited by
// MaxBatch; larger batches are rejected rather than risking a
// store-and-forward deadlock on full inboxes.
func (e *Engine) UnicastBatch(pairs []Pair) (*BatchStats, error) {
	if len(pairs) > e.MaxBatch() {
		return nil, fmt.Errorf("simnet: batch of %d exceeds MaxBatch %d", len(pairs), e.MaxBatch())
	}
	stats := &BatchStats{Results: make([]BatchResult, len(pairs))}
	results := make(chan taggedResult, len(pairs))
	e.batchResults = results
	// Reset transit counters.
	e.resetPhaseCounters()
	for _, n := range e.nodes {
		if n != nil {
			n.transited = 0
		}
	}
	inFlight := 0
	for i, p := range pairs {
		stats.Results[i].Pair = p
		if !e.t.Contains(p.Src) || !e.t.Contains(p.Dst) {
			stats.Results[i].UnicastResult = UnicastResult{
				Outcome: core.Failure, Err: fmt.Errorf("simnet: node outside cube")}
			continue
		}
		src := e.nodes[p.Src]
		if src == nil || e.nodes[p.Dst] == nil {
			stats.Results[i].UnicastResult = UnicastResult{
				Outcome: core.Failure, Err: fmt.Errorf("simnet: faulty endpoint")}
			continue
		}
		src.inbox <- message{
			kind:  msgUnicast,
			tag:   i + 1, // 0 means untagged (single-unicast mode)
			dest:  p.Dst,
			path:  topo.Path{p.Src},
			trace: e.nextTrace(),
		}
		inFlight++
	}
	for ; inFlight > 0; inFlight-- {
		tr := <-results
		stats.Results[tr.tag-1].UnicastResult = tr.res
	}
	e.batchResults = nil
	for i := range stats.Results {
		r := &stats.Results[i]
		if r.Outcome != core.Failure {
			stats.Delivered++
			stats.TotalHops += r.Hops
		}
	}
	for _, n := range e.nodes {
		if n != nil && n.transited > stats.MaxTransit {
			stats.MaxTransit = n.transited
		}
	}
	if e.obs != nil {
		e.obs.Counter("simnet_batches_total").Inc()
		e.obs.Counter("simnet_unicasts_total").Add(int64(len(pairs)))
		e.obs.Counter("simnet_delivered_total").Add(int64(stats.Delivered))
		e.obs.Counter("simnet_unicast_messages_total").Add(int64(e.phaseMessages()))
		e.obs.Gauge("simnet_batch_last_max_transit").Set(int64(stats.MaxTransit))
		transit := e.obs.Histogram("simnet_node_transit")
		for _, n := range e.nodes {
			if n != nil && n.transited > 0 {
				transit.Observe(int64(n.transited))
			}
		}
	}
	return stats, nil
}

// taggedResult routes a batch entry's outcome back to its slot.
type taggedResult struct {
	tag int
	res UnicastResult
}
