package simnet

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/topo"
)

// Faults exposes the engine's live fault oracle so diagnosis front-ends
// (internal/diagnose) can enumerate testers and synthesize faulty
// nodes' reports. Callers must treat it as read-only: churn goes
// through Apply/KillNode/ReviveNode so the node goroutines stay in
// sync.
func (e *Engine) Faults() *faults.Set { return e.set }

// SelfTest performs one PMC neighbor test as a real message exchange:
// tester u sends its adjacent neighbor v a unicast and reads the
// outcome as the test result — delivery means v answered (fault-free),
// a refusal means it did not. Run a GS phase first so levels are in
// place, exactly as for any other unicast.
//
// The return triple mirrors a syndrome entry: faulty is u's report,
// tested is false when the u–v link is itself faulty (the exchange
// never completes, so the test contributes no constraint), and err
// flags misuse — a non-adjacent pair or a faulty tester, whose report
// cannot be produced by a message exchange at all (the adversary policy
// in internal/diagnose synthesizes it instead).
func (e *Engine) SelfTest(u, v topo.NodeID) (faulty, tested bool, err error) {
	if !e.t.Contains(u) || !e.t.Contains(v) || !e.t.Adjacent(u, v) {
		return false, false, fmt.Errorf("simnet: self-test wants adjacent nodes, got %s and %s",
			e.t.Format(u), e.t.Format(v))
	}
	if e.nodes[u] == nil {
		return false, false, fmt.Errorf("simnet: self-tester %s is faulty", e.t.Format(u))
	}
	if e.set.LinkFaulty(u, v) {
		return false, false, nil
	}
	res := e.Unicast(u, v)
	return res.Outcome == core.Failure, true, nil
}
