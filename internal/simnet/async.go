package simnet

import "sync/atomic"

// Asynchronous GLOBAL_STATUS (Section 2.2: "the GS algorithm can be
// implemented asynchronously as in the demand-driven approach").
//
// Protocol: every node pushes its initial level to its peers; from then
// on a node recomputes its level whenever a neighbor update arrives and
// pushes its new level only when it changed. Because levels start at
// the top (n) and Definition 1 is monotone, levels only decrease, each
// node sends at most n+1 updates per link, and the protocol reaches
// quiescence at the same unique fixpoint as the synchronous rounds
// (Theorem 1).
//
// Quiescence detection: the engine keeps a global in-flight message
// counter. A node increments it before each send and decrements it
// after fully processing a message — including any sends the processing
// triggered — so the counter reading zero means no message is in flight
// and no further update can ever be triggered. The node that decrements
// to zero pokes the engine, which closes the phase-done channel.

// asyncState carries the per-phase coordination of one async GS run.
type asyncState struct {
	inflight atomic.Int64
	zero     chan struct{} // poked when inflight hits 0
	done     chan struct{} // closed by the engine: phase over
}

// RunGSAsync executes the asynchronous GS protocol to quiescence. It
// blocks until every live node has finished the phase and levels hold
// the same fixpoint the synchronous RunGS computes.
func (e *Engine) RunGSAsync() {
	st := &asyncState{
		zero: make(chan struct{}, 1),
		done: make(chan struct{}),
	}
	e.async = st
	e.resetPhaseCounters()
	live := 0
	for _, n := range e.nodes {
		if n == nil {
			continue
		}
		live++
		e.wg.Add(1)
		e.startwg.Add(1)
		n.ctrl <- ctrlMsg{kind: ctrlGSAsync}
	}
	if live == 0 {
		close(st.done)
		e.async = nil
		return
	}
	// Started nodes push their initial levels before signaling
	// readiness through startwg (inside runGSAsync), so once startwg
	// settles the counter is an upper bound on remaining work and a
	// zero reading is conclusive.
	e.startwg.Wait()
	for st.inflight.Load() != 0 {
		<-st.zero
	}
	close(st.done)
	e.wg.Wait()
	e.async = nil
	e.recordGS("simnet-async", 0, e.Updates())
}

// runGSAsync is the node side of the asynchronous protocol.
func (n *node) runGSAsync(st *asyncState) {
	e := n.eng
	dim := e.t.Dim()
	_, inN2 := n.gsPeers()

	// Same initialization as the synchronous protocol.
	n.level, n.public = dim, dim
	if inN2 {
		n.level, n.public = 0, 0
	}
	n.lastChange = 0
	n.updates = 0
	n.initNbrLevels()
	scratch := make([]int, dim+1) // LevelFromNeighbors counting buckets

	// One local recomputation before the initial push: a node adjacent
	// to faults must lower its level even if it never receives a
	// message (e.g. when every neighbor is faulty), exactly as the
	// first synchronous round would.
	if !inN2 {
		if nl := n.levelNow(scratch); nl != n.level {
			n.level, n.public = nl, nl
			n.updates++
		}
		// Initial push (N2 nodes stay publicly silent at 0, so their
		// initial value is already what peers assume).
		n.pushLevel(st)
	}
	e.startwg.Done()

	// Drain any level messages stashed while this node had not yet
	// entered the phase.
	kept := n.stash[:0]
	for _, m := range n.stash {
		if m.kind == msgLevel {
			n.asyncProcess(st, m, scratch, inN2)
		} else {
			kept = append(kept, m)
		}
	}
	n.stash = kept

	for {
		select {
		case m := <-n.inbox:
			if m.kind != msgLevel {
				// Unicasts are only injected between phases; keep it
				// for the main loop.
				n.stash = append(n.stash, m)
				continue
			}
			n.asyncProcess(st, m, scratch, inN2)
		case <-st.done:
			// Quiescent. N2 nodes now run NODE_STATUS once for their
			// own view (the EGS last-round step), using the final
			// neighbor levels; nbrLevel entries across faulty links
			// were initialized to 0 and never updated, as required.
			if inN2 {
				n.level = n.levelNow(scratch)
				n.updates++
			}
			return
		}
	}
}

// asyncProcess folds one neighbor update into the node's state,
// propagating the node's own level if it changed. The in-flight
// decrement happens after any triggered sends so a zero counter is
// conclusive.
func (n *node) asyncProcess(st *asyncState, m message, scratch []int, inN2 bool) {
	n.nbrLevel[m.from][m.fromCoord] = m.level
	if !inN2 {
		if nl := n.levelNow(scratch); nl != n.level {
			n.level, n.public = nl, nl
			n.updates++
			n.pushLevel(st)
		}
	}
	if st.inflight.Add(-1) == 0 {
		select {
		case st.zero <- struct{}{}:
		default:
		}
	}
}

// pushLevel sends the node's current public level to every GS peer and
// to nonfaulty N2 neighbors over healthy links (they need the values
// for their final own-level computation).
func (n *node) pushLevel(st *asyncState) {
	e := n.eng
	for i := range n.line {
		for v, b := range n.line[i] {
			if v == n.coord[i] || e.set.LinkFaulty(n.id, b) || e.set.NodeFaulty(b) {
				continue
			}
			peer := e.nodes[b]
			if peer == nil {
				continue
			}
			st.inflight.Add(1)
			n.countSend(i)
			peer.inbox <- message{kind: msgLevel, from: i, fromCoord: n.coord[i], level: n.public}
		}
	}
}

// Updates returns the total number of level recomputations that changed
// a node's value during the last asynchronous phase — the async
// analogue of round counting. Call it only between phases.
func (e *Engine) Updates() int {
	total := 0
	for _, n := range e.nodes {
		if n != nil {
			total += n.updates
		}
	}
	return total
}
