package simnet

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/topo"
)

// checkStepAgreement compares one churn step's distributed agreement to
// the sequential fixpoint on the same fault state.
func checkStepAgreement(t *testing.T, name string, tp topo.Topology, shadow *faults.Set, step ChurnStep) {
	t.Helper()
	as := core.Compute(shadow, core.Options{})
	for a := 0; a < tp.Nodes(); a++ {
		id := topo.NodeID(a)
		wantPub, wantOwn := as.Level(id), as.OwnLevel(id)
		if shadow.NodeFaulty(id) {
			wantPub, wantOwn = 0, 0
		}
		if step.Levels[a] != wantPub || step.OwnLevels[a] != wantOwn {
			t.Fatalf("%s: node %s engine %d/%d, core %d/%d",
				name, tp.Format(id), step.Levels[a], step.OwnLevels[a], wantPub, wantOwn)
		}
	}
}

// runChurnAgainstCore replays a schedule through the engine and checks
// the post-exchange agreement against core.Compute after every event.
func runChurnAgainstCore(t *testing.T, tp topo.Topology, events []faults.ChurnEvent, opts ChurnRunOptions) *ChurnReport {
	t.Helper()
	e := New(faults.NewSet(tp))
	defer e.Close()
	rep, err := e.RunChurn(events, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Steps) != len(events) {
		t.Fatalf("ran %d steps, want %d", len(rep.Steps), len(events))
	}
	shadow := faults.NewSet(tp)
	for i, step := range rep.Steps {
		if err := shadow.Apply(step.Event); err != nil {
			t.Fatalf("step %d shadow apply %v: %v", i, step.Event, err)
		}
		checkStepAgreement(t, fmt.Sprintf("step %d (%v)", i, step.Event), tp, shadow, step)
	}
	return rep
}

// TestChurnSyncMatchesCore drives node+link churn through the
// synchronous protocol on binary and generalized shapes.
func TestChurnSyncMatchesCore(t *testing.T) {
	shapes := []topo.Topology{topo.MustCube(4), topo.MustMixed(2, 3, 2)}
	for si, tp := range shapes {
		events := faults.ChurnSchedule(tp, uint64(31+si), 25, faults.ChurnOptions{Links: true})
		runChurnAgainstCore(t, tp, events, ChurnRunOptions{Unicasts: 2, Seed: 5})
	}
}

// TestChurnAsyncMatchesCore is the issue's async churn mode:
// fail/recover events interleaved with asynchronous GS message
// exchange, checked against the sequential fixpoint at every step.
func TestChurnAsyncMatchesCore(t *testing.T) {
	shapes := []topo.Topology{topo.MustCube(4), topo.MustCube(5), topo.MustMixed(2, 3, 2)}
	for si, tp := range shapes {
		events := faults.ChurnSchedule(tp, uint64(47+si), 25, faults.ChurnOptions{Links: true})
		rep := runChurnAgainstCore(t, tp, events, ChurnRunOptions{Async: true, Unicasts: 2, Seed: 9})
		for i, step := range rep.Steps {
			if step.Rounds != 0 {
				t.Fatalf("step %d: async step reports sync rounds %d", i, step.Rounds)
			}
		}
	}
}

// TestChurnMetrics checks the churn counters the observability layer
// gains with this mode.
func TestChurnMetrics(t *testing.T) {
	tp := topo.MustCube(4)
	e := New(faults.NewSet(tp))
	defer e.Close()
	reg := obs.NewRegistry()
	e.SetObs(reg)
	events := faults.ChurnSchedule(tp, 3, 10, faults.ChurnOptions{})
	if _, err := e.RunChurn(events, ChurnRunOptions{Async: true}); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("simnet_churn_events_total").Value(); got != 10 {
		t.Fatalf("churn events counter = %d, want 10", got)
	}
	if reg.Counter("simnet_churn_messages_total").Value() == 0 {
		t.Fatal("churn messages counter stayed zero")
	}
}

// TestReviveNode pins the revive contract directly: revive errors on
// live or never-faulty nodes, and a killed node rejoins the agreement
// with correct levels after one exchange.
func TestReviveNode(t *testing.T) {
	tp := topo.MustCube(4)
	e := New(faults.NewSet(tp))
	defer e.Close()
	if err := e.ReviveNode(3); err == nil {
		t.Fatal("revived a live node")
	}
	if err := e.KillNode(3); err != nil {
		t.Fatal(err)
	}
	e.RunGS(0)
	if err := e.ReviveNode(3); err != nil {
		t.Fatal(err)
	}
	e.RunGS(0)
	lv := e.Levels()
	for a, l := range lv {
		if l != tp.Dim() {
			t.Fatalf("node %d level %d after full recovery, want %d", a, l, tp.Dim())
		}
	}
}

// FuzzChurnSchedule feeds arbitrary schedules through the distributed
// engine: after every event and exchange, the engine's agreement must
// equal the sequential fixpoint (repaired or cold — they are the same
// by the core differential suite).
func FuzzChurnSchedule(f *testing.F) {
	f.Add(uint64(1), uint16(10), false, false)
	f.Add(uint64(2), uint16(20), true, true)
	f.Add(uint64(99), uint16(15), true, false)
	f.Add(uint64(31337), uint16(25), false, true)
	f.Fuzz(func(t *testing.T, seed uint64, steps uint16, links, async bool) {
		tp := topo.MustCube(4)
		n := int(steps%30) + 1
		events := faults.ChurnSchedule(tp, seed, n, faults.ChurnOptions{Links: links})
		e := New(faults.NewSet(tp))
		defer e.Close()
		rep, err := e.RunChurn(events, ChurnRunOptions{Async: async, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		shadow := faults.NewSet(tp)
		for i, step := range rep.Steps {
			if err := shadow.Apply(step.Event); err != nil {
				t.Fatalf("step %d shadow apply %v: %v", i, step.Event, err)
			}
			as := core.Compute(shadow, core.Options{})
			for a := 0; a < tp.Nodes(); a++ {
				id := topo.NodeID(a)
				wantPub, wantOwn := as.Level(id), as.OwnLevel(id)
				if shadow.NodeFaulty(id) {
					wantPub, wantOwn = 0, 0
				}
				if step.Levels[a] != wantPub || step.OwnLevels[a] != wantOwn {
					t.Fatalf("step %d (%v): node %s engine %d/%d, core %d/%d",
						i, step.Event, tp.Format(id),
						step.Levels[a], step.OwnLevels[a], wantPub, wantOwn)
				}
			}
		}
	})
}
