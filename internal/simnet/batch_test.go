package simnet

import (
	"testing"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/stats"
	"repro/internal/topo"
)

func TestBatchMatchesSequentialUnicasts(t *testing.T) {
	// A concurrent batch must produce, per pair, the same outcome and
	// path as routing the pairs one at a time (forwarding decisions
	// depend only on static levels, so interleaving cannot change them).
	rng := stats.NewRNG(556677)
	for trial := 0; trial < 10; trial++ {
		c := topo.MustCube(6)
		s := faults.NewSet(c)
		faults.InjectUniform(s, rng, rng.Intn(6))
		as := core.Compute(s, core.Options{})
		rt := core.NewRouter(as, nil)

		e := New(s)
		e.RunGS(0)
		var pairs []Pair
		for len(pairs) < 30 {
			src := topo.NodeID(rng.Intn(c.Nodes()))
			dst := topo.NodeID(rng.Intn(c.Nodes()))
			if s.NodeFaulty(src) || s.NodeFaulty(dst) {
				continue
			}
			pairs = append(pairs, Pair{src, dst})
		}
		stats, err := e.UnicastBatch(pairs)
		if err != nil {
			t.Fatal(err)
		}
		for i, res := range stats.Results {
			want := rt.Unicast(pairs[i].Src, pairs[i].Dst)
			if res.Outcome != want.Outcome {
				t.Fatalf("trial %d pair %d: batch %v, sequential %v",
					trial, i, res.Outcome, want.Outcome)
			}
			if want.Outcome == core.Failure {
				continue
			}
			if res.Hops != want.Len() {
				t.Fatalf("trial %d pair %d: batch %d hops, sequential %d",
					trial, i, res.Hops, want.Len())
			}
			for j := range want.Path {
				if res.Path[j] != want.Path[j] {
					t.Fatalf("trial %d pair %d: paths diverge", trial, i)
				}
			}
		}
		e.Close()
	}
}

func TestBatchStatsAggregation(t *testing.T) {
	s := fig1Set(t)
	c := s.Cube()
	e := New(s)
	defer e.Close()
	e.RunGS(0)
	pairs := []Pair{
		{c.MustParse("1110"), c.MustParse("0001")}, // optimal, 4 hops
		{c.MustParse("0001"), c.MustParse("1100")}, // optimal, 3 hops
		{c.MustParse("0001"), c.MustParse("0001")}, // self, 0 hops
	}
	st, err := e.UnicastBatch(pairs)
	if err != nil {
		t.Fatal(err)
	}
	if st.Delivered != 3 {
		t.Errorf("delivered = %d, want 3", st.Delivered)
	}
	if st.TotalHops != 7 {
		t.Errorf("total hops = %d, want 7", st.TotalHops)
	}
	if st.MaxTransit < 1 {
		t.Errorf("max transit = %d", st.MaxTransit)
	}
}

func TestBatchHotspotCongestion(t *testing.T) {
	// All-to-one traffic: the destination transits every message, so
	// MaxTransit equals the number of delivered messages.
	c := topo.MustCube(5)
	s := faults.NewSet(c)
	e := New(s)
	defer e.Close()
	e.RunGS(0)
	var pairs []Pair
	for a := 1; a < c.Nodes() && len(pairs) < e.MaxBatch(); a++ {
		pairs = append(pairs, Pair{topo.NodeID(a), 0})
	}
	st, err := e.UnicastBatch(pairs)
	if err != nil {
		t.Fatal(err)
	}
	if st.Delivered != len(pairs) {
		t.Fatalf("delivered %d of %d", st.Delivered, len(pairs))
	}
	if st.MaxTransit < len(pairs) {
		t.Errorf("hotspot transit = %d, want >= %d", st.MaxTransit, len(pairs))
	}
}

func TestBatchRejectsOversize(t *testing.T) {
	s := fig1Set(t)
	e := New(s)
	defer e.Close()
	e.RunGS(0)
	pairs := make([]Pair, e.MaxBatch()+1)
	if _, err := e.UnicastBatch(pairs); err == nil {
		t.Error("oversized batch should be rejected")
	}
}

func TestBatchWithBadEndpoints(t *testing.T) {
	s := fig1Set(t)
	c := s.Cube()
	e := New(s)
	defer e.Close()
	e.RunGS(0)
	pairs := []Pair{
		{c.MustParse("0011"), 0}, // faulty source
		{0, c.MustParse("0011")}, // faulty destination
		{99, 0},                  // outside cube
		{c.MustParse("1110"), c.MustParse("0001")}, // healthy
	}
	st, err := e.UnicastBatch(pairs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if st.Results[i].Outcome != core.Failure || st.Results[i].Err == nil {
			t.Errorf("pair %d should fail with error", i)
		}
	}
	if st.Results[3].Outcome != core.Optimal {
		t.Errorf("healthy pair failed: %v", st.Results[3].Outcome)
	}
	if st.Delivered != 1 {
		t.Errorf("delivered = %d, want 1", st.Delivered)
	}
}

func TestBatchThenSingleUnicast(t *testing.T) {
	// Mode switching: batch, then single, then batch again.
	s := fig1Set(t)
	c := s.Cube()
	e := New(s)
	defer e.Close()
	e.RunGS(0)
	if _, err := e.UnicastBatch([]Pair{{c.MustParse("1110"), c.MustParse("0001")}}); err != nil {
		t.Fatal(err)
	}
	if res := e.Unicast(c.MustParse("0001"), c.MustParse("1100")); res.Outcome != core.Optimal {
		t.Fatalf("single after batch: %v", res.Outcome)
	}
	if _, err := e.UnicastBatch([]Pair{{c.MustParse("0101"), c.MustParse("0000")}}); err != nil {
		t.Fatal(err)
	}
}
