package simnet

import (
	"fmt"
	"sort"

	"repro/internal/topo"
)

// Distributed broadcast: the level-ranked spanning-binomial-tree
// algorithm of internal/broadcast executed by the node goroutines with
// real messages. Each broadcast message carries the set of dimensions
// its receiver is responsible for; the receiver ranks them by its
// observed neighbor levels (ascending, ties by dimension — identical to
// the sequential implementation) and hands the i lower-ranked
// dimensions to every rank-i child. In a generalized hypercube the
// rank-i children are all m_i - 1 siblings along the ranked dimension;
// each child's sub-lattice fixes a distinct coordinate there, so the
// subtrees stay disjoint and no node ever receives twice. Termination
// uses the same conclusive in-flight counter as the asynchronous GS
// phase.

// BroadcastRun reports one distributed broadcast.
type BroadcastRun struct {
	Source topo.NodeID
	// Depth[a] is the tree depth at which nonfaulty node a received the
	// message; nodes the tree did not reach are absent.
	Depth map[topo.NodeID]int
	// Messages is the number of broadcast sends.
	Messages int
	// Rounds is the maximum delivery depth.
	Rounds int
}

// Broadcast floods a message from src through the live node goroutines
// and blocks until the wave quiesces. Run a GS phase first so the
// level-ranking has data. The source must be nonfaulty.
func (e *Engine) Broadcast(src topo.NodeID) (*BroadcastRun, error) {
	if !e.t.Contains(src) {
		return nil, fmt.Errorf("simnet: source outside cube")
	}
	s := e.nodes[src]
	if s == nil {
		return nil, fmt.Errorf("simnet: source %s is faulty", e.t.Format(src))
	}
	st := &asyncState{
		zero: make(chan struct{}, 1),
		done: make(chan struct{}),
	}
	e.bcast = st
	e.resetPhaseCounters()
	for _, n := range e.nodes {
		if n != nil {
			n.bcastDepth = -1
			n.bcastSent = 0
		}
	}
	dims := make([]int, e.t.Dim())
	for i := range dims {
		dims[i] = i
	}
	before := e.MessagesSent()
	st.inflight.Add(1)
	s.inbox <- message{kind: msgBroadcast, round: 0, dims: dims}
	for st.inflight.Load() != 0 {
		<-st.zero
	}
	close(st.done)
	e.bcast = nil

	run := &BroadcastRun{
		Source: src,
		Depth:  make(map[topo.NodeID]int),
	}
	for a, n := range e.nodes {
		if n == nil || n.bcastDepth < 0 {
			continue
		}
		run.Depth[topo.NodeID(a)] = n.bcastDepth
		if n.bcastDepth > run.Rounds {
			run.Rounds = n.bcastDepth
		}
	}
	// Every counted send is a node-to-node traversal; the engine's root
	// injection does not pass through a node's sent counter.
	run.Messages = e.MessagesSent() - before
	if e.obs != nil {
		e.obs.Counter("simnet_broadcasts_total").Inc()
		e.obs.Counter("simnet_broadcast_messages_total").Add(int64(run.Messages))
		e.obs.Gauge("simnet_broadcast_last_rounds").Set(int64(run.Rounds))
	}
	return run, nil
}

// handleBroadcast is the node side: record the delivery depth, rank the
// assigned dimensions, delegate subtrees.
func (n *node) handleBroadcast(m message, st *asyncState) {
	e := n.eng
	if n.bcastDepth < 0 {
		n.bcastDepth = m.round
	}
	ranked := append([]int(nil), m.dims...)
	sort.Slice(ranked, func(i, j int) bool {
		li, lj := n.observedDimLevel(ranked[i]), n.observedDimLevel(ranked[j])
		if li != lj {
			return li < lj
		}
		return ranked[i] < ranked[j]
	})
	for i := len(ranked) - 1; i >= 0; i-- {
		dim := ranked[i]
		for v, b := range n.line[dim] {
			if v == n.coord[dim] || e.set.NodeFaulty(b) || e.set.LinkFaulty(n.id, b) {
				continue
			}
			peer := e.nodes[b]
			if peer == nil {
				continue
			}
			st.inflight.Add(1)
			n.countSend(dim)
			n.bcastSent++
			peer.inbox <- message{
				kind:  msgBroadcast,
				round: m.round + 1,
				dims:  append([]int(nil), ranked[:i]...),
			}
		}
	}
	if st.inflight.Add(-1) == 0 {
		select {
		case st.zero <- struct{}{}:
		default:
		}
	}
}
