// Package simnet executes the paper's protocols on a distributed
// message-passing substrate: one goroutine per nonfaulty hypercube node,
// one channel per node inbox, and no shared mutable state during a
// protocol phase. It is the executable counterpart of the paper's cost
// model — "the safety level of each node can be easily calculated through
// n-1 rounds of information exchange among neighboring nodes" — and lets
// the experiments count real rounds and real per-link messages.
//
// The engine is generic over topo.Topology: binary cubes run Definition 1
// levels, generalized hypercubes (Section 4.2) run Definition 4 by
// reducing each dimension's sibling levels to their minimum before the
// safety-level evaluation. Both reach the fixpoint within n-1 rounds
// because every dimension's minimum is available in one exchange step.
//
// Key invariant: within a phase, nodes interact only by messages. The
// engine serializes phases — a GS phase (bulk-synchronous level
// exchange over exactly D rounds), unicast phases (hop-by-hop message
// forwarding), and fault injection between phases (fail-stop nodes die;
// a state-change-driven GS recomputation follows, matching Section
// 2.2's update strategies) — and the levels it converges to must equal
// the sequential core.Compute fixpoint (Theorem 1 uniqueness again).
package simnet
