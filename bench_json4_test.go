package safecube

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/stats"
	"repro/internal/topo"
)

// TestEmitBenchJSON4 regenerates BENCH_4.json, the committed measurement
// of the concurrent route-serving engine (internal/serve, public Server)
// against a mutex-guarded facade under a churn storm. It shares the
// BENCH_1..3 gate:
//
//	EMIT_BENCH_JSON=1 go test -run TestEmitBenchJSON .
//
// The workload models serving under fault churn: N concurrent clients
// each stream route queries and, in the storm cells, interleave a fault
// report (fail/recover of a node they monitor) every few queries. The
// baseline is what a caller gets without the serving layer: the
// single-goroutine Cube facade behind a sync.Mutex, where every report
// invalidates the level cache and the next query pays the incremental
// repair under the lock, serialized against every other client. The
// Server instead feeds reports through its bounded apply queue to one
// background applier that coalesces them into few repairs and publishes
// immutable snapshots, which queries load with one atomic pointer read
// — so a churn storm degrades route throughput gracefully instead of
// making readers pay for every event.
func TestEmitBenchJSON4(t *testing.T) {
	if os.Getenv("EMIT_BENCH_JSON") == "" {
		t.Skip("set EMIT_BENCH_JSON=1 to regenerate BENCH_4.json")
	}

	const (
		dim           = 12
		initialFaults = 16
		stormEvery    = 3 // in storm cells, every 3rd client op is a fault report
		cell          = 400 * time.Millisecond
	)
	tp := topo.MustCube(dim)

	type entry struct {
		Name         string  `json:"name"`
		Readers      int     `json:"readers"`
		Churn        bool    `json:"churn"`
		RoutesPerSec float64 `json:"routes_per_sec"`
		Routes       int64   `json:"routes"`
	}

	// measure runs `readers` client goroutines for one cell and returns
	// the aggregate number of completed route queries. Each client calls
	// route() and, when storm is set, report() on every stormEvery-th
	// operation (toggling its own monitored node between faulty and
	// recovered, so the schedule is identical for both systems).
	measure := func(readers int, storm bool,
		route func(rng *stats.RNG), report func(victim NodeID, down bool)) int64 {
		var stop atomic.Bool
		var total atomic.Int64
		var wg sync.WaitGroup
		for r := 0; r < readers; r++ {
			victim := NodeID(2000 + 3*r)
			wg.Add(1)
			go func(seed uint64) {
				defer wg.Done()
				rng := stats.NewRNG(seed*7919 + 13)
				n := int64(0)
				down := false
				for i := 0; !stop.Load(); i++ {
					if storm && i%stormEvery == stormEvery-1 {
						report(victim, down)
						down = !down
						continue
					}
					route(rng)
					n++
				}
				total.Add(n)
			}(uint64(r))
		}
		time.Sleep(cell)
		stop.Store(true)
		wg.Wait()
		return total.Load()
	}

	newCube := func() *Cube {
		c := MustNew(dim)
		if err := c.InjectRandomFaults(42, initialFaults); err != nil {
			t.Fatal(err)
		}
		return c
	}

	// Baseline: the plain facade behind one mutex. Reports take the same
	// lock, and the facade's level cache re-converges under it on the
	// next query.
	baseline := func(readers int, storm bool) int64 {
		c := newCube()
		var mu sync.Mutex
		route := func(rng *stats.RNG) {
			src := NodeID(rng.Intn(c.Nodes()))
			dst := NodeID(rng.Intn(c.Nodes()))
			mu.Lock()
			c.Unicast(src, dst)
			mu.Unlock()
		}
		report := func(victim NodeID, down bool) {
			mu.Lock()
			defer mu.Unlock()
			if down {
				_ = c.RecoverNode(victim)
			} else {
				_ = c.FailNode(victim)
			}
		}
		return measure(readers, storm, route, report)
	}

	// Serving engine: lock-free snapshot reads; reports go through the
	// bounded apply queue and are coalesced by the applier.
	serveEngine := func(readers int, storm bool) int64 {
		c := newCube()
		srv, err := c.Serve(ServeOptions{QueueDepth: 64})
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		route := func(rng *stats.RNG) {
			src := NodeID(rng.Intn(c.Nodes()))
			dst := NodeID(rng.Intn(c.Nodes()))
			srv.Unicast(src, dst)
		}
		report := func(victim NodeID, down bool) {
			if down {
				_ = srv.RecoverNode(victim)
			} else {
				_ = srv.FailNode(victim)
			}
		}
		return measure(readers, storm, route, report)
	}

	var results []entry
	run := func(name string, readers int, storm bool, f func(readers int, storm bool) int64) entry {
		routes := f(readers, storm)
		e := entry{
			Name:         fmt.Sprintf("%s/readers=%d/churn=%v", name, readers, storm),
			Readers:      readers,
			Churn:        storm,
			RoutesPerSec: float64(routes) / cell.Seconds(),
			Routes:       routes,
		}
		results = append(results, e)
		return e
	}

	var base16, serve16 entry
	for _, readers := range []int{1, 4, 16} {
		for _, storm := range []bool{false, true} {
			b := run("facade-mutex", readers, storm, baseline)
			s := run("serve", readers, storm, serveEngine)
			if readers == 16 && storm {
				base16, serve16 = b, s
			}
		}
	}

	speedup := serve16.RoutesPerSec / base16.RoutesPerSec
	report := struct {
		Config         string  `json:"config"`
		Claim          string  `json:"claim"`
		Speedup16Churn float64 `json:"speedup_16_readers_churn"`
		Results        []entry `json:"results"`
	}{
		Config: fmt.Sprintf("Q%d (%d nodes), %d initial faults, churn storm = every %dth client op "+
			"is a node fail/recover report, %s per cell, GOMAXPROCS=%s", dim, tp.Nodes(),
			initialFaults, stormEvery, cell, strconv.Itoa(runtime.GOMAXPROCS(0))),
		Claim: fmt.Sprintf("with 16 concurrent clients under a churn storm, the snapshot-serving "+
			"engine routes %.0f req/s where the mutex-guarded facade routes %.0f req/s (%.1fx): "+
			"queries load an immutable level snapshot with one atomic pointer read while the "+
			"applier coalesces queued fault reports into few incremental repairs, instead of "+
			"every report invalidating a shared cache that the next query must repair under "+
			"the lock", serve16.RoutesPerSec, base16.RoutesPerSec, speedup),
		Speedup16Churn: speedup,
		Results:        results,
	}
	if speedup < 3 {
		t.Errorf("serve/facade speedup at 16 readers under churn = %.2fx, want >= 3x", speedup)
	}

	f, err := os.Create("BENCH_4.json")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote BENCH_4.json: speedup %.2fx", speedup)
}
