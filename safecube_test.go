package safecube

import (
	"strings"
	"testing"
)

func fig1Cube(t testing.TB) *Cube {
	t.Helper()
	c := MustNew(4)
	if err := c.FailNamed("0011", "0100", "0110", "1001"); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Error("New(0) should fail")
	}
	if _, err := New(MaxDim + 1); err == nil {
		t.Error("New(MaxDim+1) should fail")
	}
	c, err := New(4)
	if err != nil {
		t.Fatal(err)
	}
	if c.Dim() != 4 || c.Nodes() != 16 {
		t.Error("dimensions wrong")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew(0) should panic")
		}
	}()
	MustNew(0)
}

func TestQuickstartFlow(t *testing.T) {
	c := fig1Cube(t)
	lv := c.ComputeLevels()
	if lv.Rounds() != 2 {
		t.Errorf("rounds = %d, want 2", lv.Rounds())
	}
	if got := lv.Level(c.MustParse("0101")); got != 2 {
		t.Errorf("S(0101) = %d, want 2", got)
	}
	if err := lv.Verify(); err != nil {
		t.Error(err)
	}
	r := c.Unicast(c.MustParse("1110"), c.MustParse("0001"))
	if r.Outcome != Optimal || r.Condition != CondC1 {
		t.Fatalf("outcome %v condition %v", r.Outcome, r.Condition)
	}
	if got := r.PathString(c); got != "1110 -> 1111 -> 1101 -> 0101 -> 0001" {
		t.Errorf("path = %s", got)
	}
	if r.Hops() != 4 || r.Hamming != 4 {
		t.Errorf("hops %d hamming %d", r.Hops(), r.Hamming)
	}
}

func TestLevelsCaching(t *testing.T) {
	c := fig1Cube(t)
	l1 := c.ComputeLevels()
	l2 := c.ComputeLevels()
	if l1.as != l2.as {
		t.Error("levels should be cached between identical calls")
	}
	if err := c.FailNode(c.MustParse("1111")); err != nil {
		t.Fatal(err)
	}
	l3 := c.ComputeLevels()
	if l3.as == l1.as {
		t.Error("fault mutation must invalidate the cache")
	}
}

func TestFailRecoverRoundTrip(t *testing.T) {
	c := MustNew(4)
	a := c.MustParse("0101")
	if err := c.FailNode(a); err != nil {
		t.Fatal(err)
	}
	if !c.NodeFaulty(a) || c.NodeFaults() != 1 {
		t.Error("fault not recorded")
	}
	if err := c.RecoverNode(a); err != nil {
		t.Fatal(err)
	}
	if c.NodeFaulty(a) {
		t.Error("recovery not recorded")
	}
	lv := c.ComputeLevels()
	if !lv.Safe(a) {
		t.Error("recovered fault-free cube should be all safe")
	}
}

func TestFailNamedErrors(t *testing.T) {
	c := MustNew(4)
	if err := c.FailNamed("01"); err == nil {
		t.Error("short address should error")
	}
	if err := c.FailNamed("0102"); err == nil {
		t.Error("non-binary address should error")
	}
}

func TestInjectRandomFaultsDeterministic(t *testing.T) {
	a, b := MustNew(6), MustNew(6)
	if err := a.InjectRandomFaults(99, 10); err != nil {
		t.Fatal(err)
	}
	if err := b.InjectRandomFaults(99, 10); err != nil {
		t.Fatal(err)
	}
	fa, fb := a.FaultyNodes(), b.FaultyNodes()
	if len(fa) != 10 || len(fb) != 10 {
		t.Fatal("wrong fault count")
	}
	for i := range fa {
		if fa[i] != fb[i] {
			t.Fatal("same seed produced different fault sets")
		}
	}
}

func TestConnectedAndDisconnected(t *testing.T) {
	c := MustNew(4)
	if !c.Connected() {
		t.Error("fault-free cube is connected")
	}
	if err := c.FailNamed("0110", "1010", "1100", "1111"); err != nil {
		t.Fatal(err)
	}
	if c.Connected() {
		t.Error("Fig. 3 cube is disconnected")
	}
	// Cross-partition unicast aborts cleanly at the source.
	r := c.Unicast(c.MustParse("0111"), c.MustParse("1110"))
	if r.Outcome != Failure || r.Err != nil {
		t.Errorf("outcome %v err %v, want clean failure", r.Outcome, r.Err)
	}
	cond, out := c.Feasibility(c.MustParse("0111"), c.MustParse("1110"))
	if cond != CondNone || out != Failure {
		t.Errorf("feasibility %v/%v", cond, out)
	}
}

func TestOptimalPathExists(t *testing.T) {
	c := fig1Cube(t)
	if !c.OptimalPathExists(c.MustParse("1110"), c.MustParse("0001")) {
		t.Error("paper example path should exist")
	}
	d := MustNew(4)
	d.FailNamed("0001", "0010")
	if d.OptimalPathExists(d.MustParse("0000"), d.MustParse("0011")) {
		t.Error("blocked pair should have no optimal path")
	}
}

func TestLinkFaultFlow(t *testing.T) {
	c := MustNew(4)
	if err := c.FailNamed("0000", "0100", "1100", "1110"); err != nil {
		t.Fatal(err)
	}
	if err := c.FailLink(c.MustParse("1000"), c.MustParse("1001")); err != nil {
		t.Fatal(err)
	}
	lv := c.ComputeLevels()
	if lv.Level(c.MustParse("1000")) != 0 || lv.OwnLevel(c.MustParse("1000")) != 1 {
		t.Error("N2 levels wrong for 1000")
	}
	if lv.OwnLevel(c.MustParse("1001")) != 2 {
		t.Error("own level of 1001 should be 2")
	}
	r := c.Unicast(c.MustParse("1101"), c.MustParse("1000"))
	if r.Outcome != Suboptimal {
		t.Fatalf("outcome = %v", r.Outcome)
	}
	if got := r.PathString(c); got != "1101 -> 1111 -> 1011 -> 1010 -> 1000" {
		t.Errorf("path = %s", got)
	}
	if err := c.FailLink(c.MustParse("0000"), c.MustParse("0011")); err == nil {
		t.Error("non-adjacent link should error")
	}
}

func TestCubeString(t *testing.T) {
	c := fig1Cube(t)
	s := c.String()
	if !strings.Contains(s, "Q4") || !strings.Contains(s, "4 node faults") {
		t.Errorf("String = %q", s)
	}
}

func TestRouteHopsEmpty(t *testing.T) {
	r := &Route{}
	if r.Hops() != 0 {
		t.Error("empty route has 0 hops")
	}
}

func TestHammingExported(t *testing.T) {
	if Hamming(0b1110, 0b0001) != 4 {
		t.Error("Hamming wrong")
	}
}

func TestDistributedFacade(t *testing.T) {
	c := fig1Cube(t)
	d := c.Distributed()
	defer d.Close()
	d.RunGS()
	if d.StableRound() != 2 {
		t.Errorf("stable round = %d, want 2", d.StableRound())
	}
	lv := d.Levels()
	if lv[c.MustParse("0101")] != 2 {
		t.Errorf("distributed S(0101) = %d", lv[c.MustParse("0101")])
	}
	if d.MessagesSent() == 0 {
		t.Error("GS should send messages")
	}
	r := d.Unicast(c.MustParse("1110"), c.MustParse("0001"))
	if r.Outcome != Optimal || r.PathString(c) != "1110 -> 1111 -> 1101 -> 0101 -> 0001" {
		t.Errorf("distributed route: %v %s", r.Outcome, r.PathString(c))
	}
	// Kill a node, recompute, observe levels drop.
	if err := d.KillNode(c.MustParse("1111")); err != nil {
		t.Fatal(err)
	}
	d.RunGS()
	lv2 := d.Levels()
	if lv2[c.MustParse("1111")] != 0 {
		t.Error("killed node should be level 0")
	}
	if lv2[c.MustParse("1110")] >= lv[c.MustParse("1110")] {
		t.Error("neighbor level should drop after kill")
	}
}

func TestDistributedRunGSRounds(t *testing.T) {
	c := fig1Cube(t)
	d := c.Distributed()
	defer d.Close()
	d.RunGSRounds(1)
	full := MustNew(4)
	full.FailNamed("0011", "0100", "0110", "1001")
	exact := full.ComputeLevels()
	truncated := d.Levels()
	// One round is not enough for the 2-safe nodes.
	if truncated[c.MustParse("0101")] == exact.Level(c.MustParse("0101")) {
		t.Error("1-round GS should still be over-optimistic at 0101")
	}
}

func TestGeneralizedFacade(t *testing.T) {
	g := MustNewGeneralized(2, 3, 2)
	if g.Dim() != 3 || g.Nodes() != 12 {
		t.Fatal("shape wrong")
	}
	if err := g.FailNamed("011", "100", "111", "121"); err != nil {
		t.Fatal(err)
	}
	lv := g.ComputeLevels()
	if err := lv.Verify(); err != nil {
		t.Error(err)
	}
	if got := lv.Level(g.MustParse("110")); got != 1 {
		t.Errorf("S(110) = %d, want 1", got)
	}
	if len(lv.SafeSet()) != 4 {
		t.Errorf("safe set = %d, want 4", len(lv.SafeSet()))
	}
	r := g.Unicast(g.MustParse("010"), g.MustParse("101"))
	if r.Outcome != Optimal {
		t.Fatalf("outcome = %v", r.Outcome)
	}
	if got := r.PathString(g); got != "010 -> 000 -> 001 -> 101" {
		t.Errorf("path = %s", got)
	}
	if r.Hops() != 3 || r.Distance != 3 {
		t.Error("distance bookkeeping wrong")
	}
	cond, out := g.Feasibility(g.MustParse("010"), g.MustParse("101"))
	if cond != CondC1 || out != Optimal {
		t.Errorf("feasibility %v/%v", cond, out)
	}
}

func TestGeneralizedValidation(t *testing.T) {
	if _, err := NewGeneralized(); err == nil {
		t.Error("no dimensions should fail")
	}
	if _, err := NewGeneralized(2, 1); err == nil {
		t.Error("radix 1 should fail")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNewGeneralized(1) should panic")
		}
	}()
	MustNewGeneralized(1)
}

func TestGeneralizedInjectAndDistance(t *testing.T) {
	g := MustNewGeneralized(3, 3, 3)
	if err := g.InjectRandomFaults(7, 5); err != nil {
		t.Fatal(err)
	}
	n := 0
	for a := 0; a < g.Nodes(); a++ {
		if g.NodeFaulty(GNodeID(a)) {
			n++
		}
	}
	if n != 5 {
		t.Errorf("faults = %d", n)
	}
	if g.Distance(g.MustParse("000"), g.MustParse("222")) != 3 {
		t.Error("distance wrong")
	}
}

func TestGRouteHopsEmpty(t *testing.T) {
	r := &GRoute{}
	if r.Hops() != 0 {
		t.Error("empty route has 0 hops")
	}
}

func TestDistributedBatchFacade(t *testing.T) {
	c := fig1Cube(t)
	d := c.Distributed()
	defer d.Close()
	d.RunGS()
	if d.MaxBatch() < 10 {
		t.Fatalf("MaxBatch = %d", d.MaxBatch())
	}
	pairs := []TrafficPair{
		{c.MustParse("1110"), c.MustParse("0001")},
		{c.MustParse("0001"), c.MustParse("1100")},
	}
	st, err := d.UnicastBatch(pairs)
	if err != nil {
		t.Fatal(err)
	}
	if st.Delivered != 2 || st.TotalHops != 7 {
		t.Errorf("delivered %d hops %d", st.Delivered, st.TotalHops)
	}
	if got := st.Routes[0].PathString(c); got != "1110 -> 1111 -> 1101 -> 0101 -> 0001" {
		t.Errorf("batch route 0 = %s", got)
	}
	if st.MaxNodeTransit < 1 {
		t.Error("transit should be positive")
	}
}

func TestRouteSessionFacade(t *testing.T) {
	c := MustNew(5)
	sess, cond, out := c.StartUnicast(c.MustParse("00000"), c.MustParse("00111"))
	if out != Optimal || cond != CondC1 {
		t.Fatalf("admission %v/%v", cond, out)
	}
	if _, err := sess.Step(); err != nil {
		t.Fatal(err)
	}
	c.FailNamed("00011", "00101")
	if _, err := sess.Step(); err != ErrBlocked {
		t.Fatalf("want ErrBlocked, got %v", err)
	}
	if _, out := sess.Reroute(); out != Suboptimal {
		t.Fatalf("reroute outcome %v", out)
	}
	if arrived, err := sess.Run(); !arrived || err != nil {
		t.Fatalf("run: %v %v", arrived, err)
	}
	if sess.Reroutes() != 1 || !sess.Done() {
		t.Error("session accounting wrong")
	}
	if sess.Path()[len(sess.Path())-1] != c.MustParse("00111") {
		t.Error("wrong destination")
	}
	// Failure admission returns nil session.
	d := MustNew(4)
	d.FailNamed("0110", "1010", "1100", "1111")
	if s2, _, out := d.StartUnicast(d.MustParse("0111"), d.MustParse("1110")); s2 != nil || out != Failure {
		t.Error("cross-partition start should fail with nil session")
	}
}

func TestBroadcastFacade(t *testing.T) {
	c := fig1Cube(t)
	res := c.Broadcast(c.MustParse("1110"))
	if len(res.Depth) != 12 || !res.Covered() {
		t.Errorf("broadcast covered %d, missed %v", len(res.Depth), res.Missed)
	}
	if res.Rounds < 1 || res.Messages < 11 {
		t.Errorf("rounds %d messages %d", res.Rounds, res.Messages)
	}
}

func TestDistributedBroadcastFacade(t *testing.T) {
	c := fig1Cube(t)
	d := c.Distributed()
	defer d.Close()
	d.RunGS()
	res, err := d.Broadcast(c.MustParse("1110"))
	if err != nil {
		t.Fatal(err)
	}
	// The distributed tree must match the sequential one.
	seq := c.Broadcast(c.MustParse("1110"))
	if len(res.Depth) != len(seq.Depth) || res.Messages != seq.Messages {
		t.Errorf("distributed %d/%d vs sequential %d/%d",
			len(res.Depth), res.Messages, len(seq.Depth), seq.Messages)
	}
	if _, err := d.Broadcast(c.MustParse("0011")); err == nil {
		t.Error("faulty source should error")
	}
}

func TestFacadeSmallSurface(t *testing.T) {
	c := fig1Cube(t)
	if got := c.Format(c.MustParse("0101")); got != "0101" {
		t.Errorf("Format = %q", got)
	}
	if err := c.FailNodes(c.MustParse("1111")); err != nil {
		t.Fatal(err)
	}
	lv := c.ComputeLevels()
	want := map[NodeID]bool{}
	for _, a := range lv.SafeSet() {
		want[a] = true
		if !lv.Safe(a) {
			t.Error("SafeSet and Safe disagree")
		}
	}
	// Generalized small surface.
	g := MustNewGeneralized(2, 3, 2)
	if got := g.Format(g.MustParse("021")); got != "021" {
		t.Errorf("GH Format = %q", got)
	}
	if !g.Connected() {
		t.Error("fault-free GH connected")
	}
	glv := g.ComputeLevels()
	if glv.Rounds() != 0 {
		t.Errorf("fault-free GH rounds = %d", glv.Rounds())
	}
	if err := g.FailNamed("09"); err == nil {
		t.Error("bad GH address should error")
	}
	if err := g.FailNamed("011", "011"); err != nil {
		t.Error("idempotent refail should not error")
	}
}

func TestDistributedAsyncFacade(t *testing.T) {
	c := fig1Cube(t)
	d := c.Distributed()
	defer d.Close()
	d.RunGSAsync()
	if d.Updates() == 0 {
		t.Error("Fig. 1 async GS should record level changes")
	}
	lv := d.Levels()
	own := d.OwnLevels()
	seq := c.ComputeLevels()
	for a := 0; a < c.Nodes(); a++ {
		if lv[a] != seq.Level(NodeID(a)) || own[a] != seq.OwnLevel(NodeID(a)) {
			t.Fatalf("async facade levels diverge at %d", a)
		}
	}
	// Session At() accessor.
	sess, _, _ := c.StartUnicast(c.MustParse("1110"), c.MustParse("0001"))
	sess.Step()
	if sess.At() != c.MustParse("1111") {
		t.Errorf("At = %s", c.Format(sess.At()))
	}
}
