package safecube

import (
	"repro/internal/core"
)

// ErrBlocked reports that an in-flight unicast can no longer choose a
// usable preferred neighbor — typically because nodes died after
// admission. Recompute the levels implicitly by calling
// RouteSession.Reroute, or abandon the message.
var ErrBlocked = core.ErrBlocked

// RouteSession is an in-flight unicast that advances one hop per Step,
// letting callers interleave failures with message progress — the
// paper's demand-driven scenario (Section 2.2): a unicast disturbed by
// a new fault "might either be aborted or be re-routed from the current
// node after all the safety levels are stabilized."
type RouteSession struct {
	sess *core.Session
	cube *Cube
}

// StartUnicast admits a unicast from s to d and returns the session.
// On Failure the session is nil (the message never leaves the source).
func (c *Cube) StartUnicast(s, d NodeID) (*RouteSession, Condition, Outcome) {
	lv := c.ComputeLevels()
	sess, cond, out := core.NewRouter(lv.as, nil).Observe(c.routeObs).Start(s, d)
	if sess == nil {
		return nil, cond, out
	}
	return &RouteSession{sess: sess, cube: c}, cond, out
}

// Step advances the message one hop, returning true on arrival.
// ErrBlocked means new faults cut the chosen directions; call Reroute.
func (rs *RouteSession) Step() (bool, error) { return rs.sess.Step() }

// Run drives the session until arrival or blockage.
func (rs *RouteSession) Run() (bool, error) { return rs.sess.Run() }

// Reroute recomputes the safety levels from the cube's current fault
// state (the state-change-driven GS) and re-admits the unicast from the
// node currently holding the message. A Failure result means the
// message is stuck there — the paper's abort branch.
func (rs *RouteSession) Reroute() (Condition, Outcome) {
	lv := rs.cube.ComputeLevels()
	return rs.sess.Reroute(lv.as)
}

// Done reports whether the message has arrived.
func (rs *RouteSession) Done() bool { return rs.sess.Done() }

// At returns the node currently holding the message.
func (rs *RouteSession) At() NodeID { return rs.sess.At() }

// Path returns the walk traveled so far.
func (rs *RouteSession) Path() []NodeID { return rs.sess.Path() }

// Hops returns the hops traveled so far.
func (rs *RouteSession) Hops() int { return rs.sess.Hops() }

// Reroutes returns how many re-admissions the session needed.
func (rs *RouteSession) Reroutes() int { return rs.sess.Reroutes() }
