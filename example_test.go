package safecube_test

import (
	"fmt"

	safecube "repro"
)

// The paper's Fig. 1 walkthrough: compute safety levels and route a
// unicast from a safe source.
func Example() {
	cube := safecube.MustNew(4)
	if err := cube.FailNamed("0011", "0100", "0110", "1001"); err != nil {
		panic(err)
	}
	levels := cube.ComputeLevels()
	fmt.Println("rounds:", levels.Rounds())
	fmt.Println("S(0101):", levels.Level(cube.MustParse("0101")))

	route := cube.Unicast(cube.MustParse("1110"), cube.MustParse("0001"))
	fmt.Println(route.Outcome, "via", route.Condition)
	fmt.Println(route.PathString(cube))
	// Output:
	// rounds: 2
	// S(0101): 2
	// optimal via C1
	// 1110 -> 1111 -> 1101 -> 0101 -> 0001
}

// Feasibility is a pure source-side check: it predicts the outcome
// class without moving a message.
func ExampleCube_Feasibility() {
	cube := safecube.MustNew(4)
	if err := cube.FailNamed("0110", "1010", "1100", "1111"); err != nil {
		panic(err)
	}
	// Destination 1110 is cut off by the four faults.
	cond, outcome := cube.Feasibility(cube.MustParse("0111"), cube.MustParse("1110"))
	fmt.Println(cond, outcome)
	// In-component destinations remain reachable.
	cond, outcome = cube.Feasibility(cube.MustParse("0101"), cube.MustParse("0000"))
	fmt.Println(cond, outcome)
	// Output:
	// none failure
	// C1 optimal
}

// A C2 unicast: the source is only 1-safe, but a preferred neighbor
// with level H-1 still guarantees an optimal path.
func ExampleCube_Unicast() {
	cube := safecube.MustNew(4)
	if err := cube.FailNamed("0011", "0100", "0110", "1001"); err != nil {
		panic(err)
	}
	route := cube.Unicast(cube.MustParse("0001"), cube.MustParse("1100"))
	fmt.Println(route.Outcome, "via", route.Condition)
	fmt.Println(route.PathString(cube))
	// Output:
	// optimal via C2
	// 0001 -> 0000 -> 1000 -> 1100
}

// Link faults (Section 4.1): the endpoints of a dead link expose level
// 0 but keep their own, higher level for routing decisions.
func ExampleCube_FailLink() {
	cube := safecube.MustNew(4)
	if err := cube.FailNamed("0000", "0100", "1100", "1110"); err != nil {
		panic(err)
	}
	if err := cube.FailLink(cube.MustParse("1000"), cube.MustParse("1001")); err != nil {
		panic(err)
	}
	levels := cube.ComputeLevels()
	fmt.Println("public:", levels.Level(cube.MustParse("1001")),
		"own:", levels.OwnLevel(cube.MustParse("1001")))

	route := cube.Unicast(cube.MustParse("1101"), cube.MustParse("1000"))
	fmt.Println(route.Outcome, "in", route.Hops(), "hops (H =", route.Hamming, ")")
	// Output:
	// public: 0 own: 2
	// suboptimal in 4 hops (H = 2 )
}

// The generalized hypercube of Fig. 5 (Section 4.2).
func ExampleGeneralized() {
	gh := safecube.MustNewGeneralized(2, 3, 2)
	if err := gh.FailNamed("011", "100", "111", "121"); err != nil {
		panic(err)
	}
	levels := gh.ComputeLevels()
	fmt.Println("safe nodes:", len(levels.SafeSet()))

	route := gh.Unicast(gh.MustParse("010"), gh.MustParse("101"))
	fmt.Println(route.Outcome, route.PathString(gh))
	// Output:
	// safe nodes: 4
	// optimal 010 -> 000 -> 001 -> 101
}

// Distributed execution: the same protocols running goroutine-per-node
// with real message passing.
func ExampleCube_Distributed() {
	cube := safecube.MustNew(4)
	if err := cube.FailNamed("0011", "0100", "0110", "1001"); err != nil {
		panic(err)
	}
	dist := cube.Distributed()
	defer dist.Close()
	dist.RunGS()
	fmt.Println("stable at round", dist.StableRound())

	route := dist.Unicast(cube.MustParse("1110"), cube.MustParse("0001"))
	fmt.Println(route.Outcome, route.PathString(cube))
	// Output:
	// stable at round 2
	// optimal 1110 -> 1111 -> 1101 -> 0101 -> 0001
}

// Mid-flight failures: step a unicast hop by hop, survive a blockage
// with a recompute-and-reroute (the paper's demand-driven maintenance).
func ExampleCube_StartUnicast() {
	cube := safecube.MustNew(5)
	sess, _, outcome := cube.StartUnicast(cube.MustParse("00000"), cube.MustParse("00111"))
	fmt.Println("admitted:", outcome)

	sess.Step() // 00000 -> 00001
	cube.FailNamed("00011", "00101")

	if _, err := sess.Step(); err == safecube.ErrBlocked {
		fmt.Println("blocked; rerouting")
		_, out := sess.Reroute()
		fmt.Println("re-admitted:", out)
	}
	arrived, _ := sess.Run()
	fmt.Println("arrived:", arrived, "hops:", sess.Hops(), "reroutes:", sess.Reroutes())
	// Output:
	// admitted: optimal
	// blocked; rerouting
	// re-admitted: suboptimal
	// arrived: true hops: 5 reroutes: 1
}

// Broadcasting from a safe node covers the whole component with the
// level-ranked binomial tree.
func ExampleCube_Broadcast() {
	cube := safecube.MustNew(4)
	if err := cube.FailNamed("0011", "0100", "0110", "1001"); err != nil {
		panic(err)
	}
	res := cube.Broadcast(cube.MustParse("1110"))
	fmt.Println("covered:", len(res.Depth), "rounds:", res.Rounds, "missed:", len(res.Missed))
	// Output:
	// covered: 12 rounds: 4 missed: 0
}
