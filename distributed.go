package safecube

import (
	"repro/internal/core"
	"repro/internal/simnet"
)

// Distributed is a running goroutine-per-node execution of the cube:
// every nonfaulty node is a goroutine, links are channels, and the GS
// and unicasting algorithms run by real message exchange. Use it to
// measure protocol cost (rounds, per-link messages) or to script
// fail-stop events between protocol phases.
//
// A Distributed instance must be Closed when done. Methods must be
// called from a single goroutine: the engine serializes protocol phases.
type Distributed struct {
	eng  *simnet.Engine
	cube *Cube
}

// Distributed starts the goroutine-per-node engine over the cube's
// current fault set. Later mutations of the Cube are not reflected;
// inject failures through KillNode instead. An instrumented cube's
// registry is inherited: GS phases record rounds and per-link message
// counts, unicast phases record message totals.
func (c *Cube) Distributed() *Distributed {
	eng := simnet.New(c.internalSet())
	eng.SetObs(c.reg)
	return &Distributed{eng: eng, cube: c}
}

// RunGS executes the distributed GLOBAL_STATUS protocol for the
// Corollary bound of n-1 rounds, blocking until all nodes finish.
func (d *Distributed) RunGS() { d.eng.RunGS(0) }

// RunGSRounds executes exactly rounds rounds (for ablation of the
// iteration budget D).
func (d *Distributed) RunGSRounds(rounds int) { d.eng.RunGS(rounds) }

// RunGSAsync executes the asynchronous GS protocol (Section 2.2):
// nodes push level updates only when their value changes and the phase
// ends at quiescence. It reaches the same unique fixpoint as RunGS but
// sends no traffic at all for parts of the cube whose levels are
// already stable — the demand-driven saving the paper describes.
func (d *Distributed) RunGSAsync() { d.eng.RunGSAsync() }

// Updates returns the number of level changes during the last
// asynchronous phase (the async analogue of round counting).
func (d *Distributed) Updates() int { return d.eng.Updates() }

// Levels snapshots every node's public safety level (index = NodeID).
func (d *Distributed) Levels() []int { return d.eng.Levels() }

// OwnLevels snapshots every node's own-view level.
func (d *Distributed) OwnLevels() []int { return d.eng.OwnLevels() }

// StableRound returns the last round in which any node's level changed
// during the previous RunGS.
func (d *Distributed) StableRound() int { return d.eng.StableRound() }

// MessagesSent returns the total messages sent so far by all nodes.
func (d *Distributed) MessagesSent() int { return d.eng.MessagesSent() }

// Unicast routes a message hop by hop through the node goroutines and
// blocks until it resolves. Run RunGS first.
func (d *Distributed) Unicast(s, dst NodeID) *Route {
	res := d.eng.Unicast(s, dst)
	return &Route{
		Source:    s,
		Dest:      dst,
		Hamming:   Hamming(s, dst),
		Outcome:   res.Outcome,
		Condition: res.Condition,
		Path:      append([]NodeID(nil), res.Path...),
		Err:       res.Err,
	}
}

// KillNode fail-stops a node between phases. The paper's
// state-change-driven maintenance then calls for a fresh RunGS. The
// owning Cube observes the same failure: the shared fault set's
// generation advances, invalidating the Cube's cached levels.
func (d *Distributed) KillNode(a NodeID) error {
	return d.eng.KillNode(a)
}

// Close stops all node goroutines.
func (d *Distributed) Close() { d.eng.Close() }

// ensure interface-ish consistency between the two route producers.
var _ = core.Optimal

// TrafficPair is one request of a concurrent unicast batch.
type TrafficPair struct {
	Src, Dst NodeID
}

// TrafficStats aggregates a concurrent batch run.
type TrafficStats struct {
	// Routes holds one result per request, in request order.
	Routes []*Route
	// Delivered counts requests that reached their destination.
	Delivered int
	// TotalHops sums hops over delivered requests.
	TotalHops int
	// MaxNodeTransit is the largest number of messages any single node
	// forwarded or delivered — the congestion hotspot.
	MaxNodeTransit int
}

// MaxBatch returns the largest number of concurrent unicasts the engine
// can route at once.
func (d *Distributed) MaxBatch() int { return d.eng.MaxBatch() }

// UnicastBatch routes all pairs concurrently through the node
// goroutines and blocks until every message resolves. Run RunGS first.
func (d *Distributed) UnicastBatch(pairs []TrafficPair) (*TrafficStats, error) {
	req := make([]simnet.Pair, len(pairs))
	for i, p := range pairs {
		req[i] = simnet.Pair{Src: p.Src, Dst: p.Dst}
	}
	st, err := d.eng.UnicastBatch(req)
	if err != nil {
		return nil, err
	}
	out := &TrafficStats{
		Routes:         make([]*Route, len(pairs)),
		Delivered:      st.Delivered,
		TotalHops:      st.TotalHops,
		MaxNodeTransit: st.MaxTransit,
	}
	for i, res := range st.Results {
		out.Routes[i] = &Route{
			Source:    pairs[i].Src,
			Dest:      pairs[i].Dst,
			Hamming:   Hamming(pairs[i].Src, pairs[i].Dst),
			Outcome:   res.Outcome,
			Condition: res.Condition,
			Path:      append([]NodeID(nil), res.Path...),
			Err:       res.Err,
		}
	}
	return out, nil
}

// DistributedBroadcast floods a message from src through the node
// goroutines using the level-ranked spanning-binomial-tree algorithm
// (see Cube.Broadcast for the sequential model and the guarantee
// discussion). Run RunGS first. Unlike Cube.Broadcast there is no
// unicast repair pass: the result reports exactly what the tree did.
func (d *Distributed) Broadcast(src NodeID) (*BroadcastResult, error) {
	run, err := d.eng.Broadcast(src)
	if err != nil {
		return nil, err
	}
	out := &BroadcastResult{
		Source:   run.Source,
		Depth:    make(map[NodeID]int, len(run.Depth)),
		Messages: run.Messages,
		Rounds:   run.Rounds,
	}
	for a, dep := range run.Depth {
		out.Depth[a] = dep
	}
	return out, nil
}
