package safecube

import (
	"repro/internal/serve"
)

// Binary wire-protocol facade: a WireServer serves the length-prefixed
// binary protocol (internal/wire) for a running Server — the data
// plane that saturates the routing engine where HTTP/JSON cannot. The
// HTTP surface stays for ops; the wire surface carries the traffic.
// See docs/OPERATIONS.md ("The binary wire protocol") for the frame
// layout, the opcode table and the error taxonomy.

// WireOptions tune a wire listener. The zero value serves with
// min(GOMAXPROCS, 4) workers per connection and 128 queued frames.
type WireOptions struct {
	// Workers is the per-connection routing worker count (<= 0 means
	// min(GOMAXPROCS, 4)).
	Workers int
	// QueueDepth bounds the per-connection in-flight frame queue
	// (<= 0 means 128); a full queue pushes back on the client's TCP
	// stream instead of buffering server memory.
	QueueDepth int
	// MaxBatch bounds the pair count of one batch frame (<= 0 means
	// 4096).
	MaxBatch int
	// Registry receives the wire_* metrics (nil disables).
	Registry *Registry
}

// WireServer is a live binary-protocol listener bound to a Server.
type WireServer struct {
	ws *serve.WireServer
}

// ServeWire starts serving the binary protocol on addr (host:port;
// use ":0" to let the kernel pick and Addr to discover it). Close the
// returned WireServer before closing the Server.
func (s *Server) ServeWire(addr string, opts WireOptions) (*WireServer, error) {
	ws, err := serve.ListenWire(s.svc, addr, serve.WireOptions{
		Workers:    opts.Workers,
		QueueDepth: opts.QueueDepth,
		MaxBatch:   opts.MaxBatch,
		Registry:   opts.Registry,
	})
	if err != nil {
		return nil, err
	}
	return &WireServer{ws: ws}, nil
}

// Addr returns the bound listen address.
func (w *WireServer) Addr() string { return w.ws.Addr() }

// Close stops accepting, closes every live connection and waits for
// the per-connection pipelines to drain. Idempotent.
func (w *WireServer) Close() error { return w.ws.Close() }
