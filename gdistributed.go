package safecube

import (
	"repro/internal/simnet"
)

// GDistributed is a running goroutine-per-node execution of a
// generalized hypercube: every nonfaulty node is a goroutine, links are
// channels, and the GS and unicasting algorithms run by real message
// exchange — the same engine the binary Distributed uses, since the
// simulator is topology-generic.
//
// A GDistributed instance must be Closed when done. Methods must be
// called from a single goroutine: the engine serializes protocol phases.
type GDistributed struct {
	eng *simnet.Engine
	g   *Generalized
}

// Distributed starts the goroutine-per-node engine over the current
// fault set. Later mutations of the Generalized are not reflected;
// inject failures through KillNode instead. An instrumented facade's
// registry is inherited: GS phases record rounds, unicast phases record
// message totals. (Per-link GS message counts are a binary-cube metric:
// a GH dimension spans several links, so they are not recorded here.)
func (g *Generalized) Distributed() *GDistributed {
	eng := simnet.New(g.set)
	eng.SetObs(g.reg)
	return &GDistributed{eng: eng, g: g}
}

// RunGS executes the distributed GLOBAL_STATUS protocol for the
// Corollary bound of n-1 rounds, blocking until all nodes finish.
func (d *GDistributed) RunGS() { d.eng.RunGS(0) }

// RunGSRounds executes exactly rounds rounds.
func (d *GDistributed) RunGSRounds(rounds int) { d.eng.RunGS(rounds) }

// RunGSAsync executes the asynchronous GS protocol (Section 2.2):
// nodes push level updates only when their value changes and the phase
// ends at quiescence.
func (d *GDistributed) RunGSAsync() { d.eng.RunGSAsync() }

// Updates returns the number of level changes during the last
// asynchronous phase.
func (d *GDistributed) Updates() int { return d.eng.Updates() }

// Levels snapshots every node's public safety level (index = GNodeID).
func (d *GDistributed) Levels() []int { return d.eng.Levels() }

// OwnLevels snapshots every node's own-view level.
func (d *GDistributed) OwnLevels() []int { return d.eng.OwnLevels() }

// StableRound returns the last round in which any node's level changed
// during the previous RunGS.
func (d *GDistributed) StableRound() int { return d.eng.StableRound() }

// MessagesSent returns the total messages sent so far by all nodes.
func (d *GDistributed) MessagesSent() int { return d.eng.MessagesSent() }

// Unicast routes a message hop by hop through the node goroutines and
// blocks until it resolves. Run RunGS first.
func (d *GDistributed) Unicast(s, dst GNodeID) *GRoute {
	res := d.eng.Unicast(s, dst)
	return &GRoute{
		Source:    s,
		Dest:      dst,
		Distance:  d.g.t.Distance(s, dst),
		Outcome:   res.Outcome,
		Condition: res.Condition,
		Path:      append([]GNodeID(nil), res.Path...),
		Err:       res.Err,
	}
}

// KillNode fail-stops a node between phases; the shared fault set's
// generation advances, invalidating the facade's cached levels.
func (d *GDistributed) KillNode(a GNodeID) error { return d.eng.KillNode(a) }

// Close stops all node goroutines.
func (d *GDistributed) Close() { d.eng.Close() }

// GTrafficStats aggregates a concurrent batch run on a generalized
// hypercube.
type GTrafficStats struct {
	// Routes holds one result per request, in request order.
	Routes []*GRoute
	// Delivered counts requests that reached their destination.
	Delivered int
	// TotalHops sums hops over delivered requests.
	TotalHops int
	// MaxNodeTransit is the largest number of messages any single node
	// forwarded or delivered — the congestion hotspot.
	MaxNodeTransit int
}

// MaxBatch returns the largest number of concurrent unicasts the engine
// can route at once.
func (d *GDistributed) MaxBatch() int { return d.eng.MaxBatch() }

// UnicastBatch routes all pairs concurrently through the node
// goroutines and blocks until every message resolves. Run RunGS first.
// TrafficPair is shared with the binary facade: NodeID and GNodeID are
// the same underlying type.
func (d *GDistributed) UnicastBatch(pairs []TrafficPair) (*GTrafficStats, error) {
	req := make([]simnet.Pair, len(pairs))
	for i, p := range pairs {
		req[i] = simnet.Pair{Src: p.Src, Dst: p.Dst}
	}
	st, err := d.eng.UnicastBatch(req)
	if err != nil {
		return nil, err
	}
	out := &GTrafficStats{
		Routes:         make([]*GRoute, len(pairs)),
		Delivered:      st.Delivered,
		TotalHops:      st.TotalHops,
		MaxNodeTransit: st.MaxTransit,
	}
	for i, res := range st.Results {
		out.Routes[i] = &GRoute{
			Source:    pairs[i].Src,
			Dest:      pairs[i].Dst,
			Distance:  d.g.t.Distance(pairs[i].Src, pairs[i].Dst),
			Outcome:   res.Outcome,
			Condition: res.Condition,
			Path:      append([]GNodeID(nil), res.Path...),
			Err:       res.Err,
		}
	}
	return out, nil
}

// Broadcast floods a message from src through the node goroutines using
// the level-ranked spanning-tree algorithm generalized to mixed-radix
// lattices (dimensions are ranked by observed level and each forward
// covers all m_i - 1 siblings of a dimension). Run RunGS first.
// BroadcastResult is shared with the binary facade.
func (d *GDistributed) Broadcast(src GNodeID) (*BroadcastResult, error) {
	run, err := d.eng.Broadcast(src)
	if err != nil {
		return nil, err
	}
	out := &BroadcastResult{
		Source:   run.Source,
		Depth:    make(map[NodeID]int, len(run.Depth)),
		Messages: run.Messages,
		Rounds:   run.Rounds,
	}
	for a, dep := range run.Depth {
		out.Depth[a] = dep
	}
	return out, nil
}
