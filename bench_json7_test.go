package safecube

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"testing"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/stats"
	"repro/internal/topo"
)

// TestEmitBenchJSON7 regenerates BENCH_7.json, the committed measurement
// of the flat SoA core: dense []uint8 level tables, bitset fault and
// frontier sets, and pooled repair scratch in place of the map-based
// data plane BENCH_3 measured. It shares the BENCH_1..6 gate:
//
//	EMIT_BENCH_JSON=1 go test -run TestEmitBenchJSON .
//
// (or `make bench-json`). The headline number is the repair-maintained
// replay of the exact BENCH_3 schedule (Q10, 40 events, seed 3): the
// acceptance bar for the refactor is >= 10x fewer bytes/op than the
// 1,105,011 B/op BENCH_3 recorded for the same loop. Alongside it the
// file records cold-GS and single-repair cost at Q16 (65,536 nodes) —
// the scale the map-based plane could not reach without multi-hundred-
// megabyte sweeps; the Q20 (1,048,576 node) end-to-end run lives in
// `make scale-smoke` and EXPERIMENTS.md E18.
func TestEmitBenchJSON7(t *testing.T) {
	if os.Getenv("EMIT_BENCH_JSON") == "" {
		t.Skip("set EMIT_BENCH_JSON=1 to regenerate BENCH_7.json")
	}

	type entry struct {
		Name        string  `json:"name"`
		NsPerOp     float64 `json:"ns_per_op"`
		AllocsPerOp int64   `json:"allocs_per_op"`
		BytesPerOp  int64   `json:"bytes_per_op"`
	}
	bench := func(name string, fn func(b *testing.B)) entry {
		r := testing.Benchmark(fn)
		return entry{
			Name:        name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
	}

	// The exact BENCH_3 replay: same topology, schedule, and seed, so
	// bytes/op is directly comparable across the two files.
	tp := topo.MustCube(10)
	events := faults.ChurnSchedule(tp, 3, 40, faults.ChurnOptions{Links: true})
	replayRepair := func(fatal func(args ...interface{})) {
		set := faults.NewSet(tp)
		prev := core.Compute(set, core.Options{})
		gen := set.Generation()
		for _, ev := range events {
			if err := set.Apply(ev); err != nil {
				fatal(err)
			}
			delta, ok := set.Since(gen)
			if !ok {
				fatal("journal gap after one event")
			}
			as, ok := core.RepairLevels(prev, set, delta, core.Options{})
			if !ok {
				fatal("repair refused")
			}
			prev = as
			gen = set.Generation()
		}
	}

	// Q16 steady state: one cold sharded fill, then alternating
	// fail/recover repairs of a single node.
	q16 := topo.MustCube(16)
	q16Set := faults.NewSet(q16)
	if err := faults.InjectUniform(q16Set, stats.NewRNG(7), 40); err != nil {
		t.Fatal(err)
	}

	results := []entry{
		bench("churn/q10/40-events/repair-flat", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				replayRepair(b.Fatal)
			}
		}),
		bench("gs/q16/cold-sharded", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				core.Compute(q16Set, core.Options{Workers: -1})
			}
		}),
		bench("repair/q16/single-node", func(b *testing.B) {
			b.ReportAllocs()
			prev := core.Compute(q16Set, core.Options{})
			gen := q16Set.Generation()
			const victim = topo.NodeID(31337)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var err error
				if i%2 == 0 {
					err = q16Set.FailNode(victim)
				} else {
					err = q16Set.RecoverNode(victim)
				}
				if err != nil {
					b.Fatal(err)
				}
				delta, ok := q16Set.Since(gen)
				if !ok {
					b.Fatal("journal gap")
				}
				as, ok := core.RepairLevels(prev, q16Set, delta, core.Options{})
				if !ok {
					b.Fatal("repair refused")
				}
				prev, gen = as, q16Set.Generation()
			}
			b.StopTimer()
			q16Set.RecoverNode(victim)
		}),
	}

	const bench3RepairBytes = 1105011 // committed BENCH_3 repair bytes/op
	ratio := float64(bench3RepairBytes) / float64(results[0].BytesPerOp)

	report := struct {
		Config  string  `json:"config"`
		Claim   string  `json:"claim"`
		Results []entry `json:"results"`
	}{
		Config: "flat SoA core; Q10 replay identical to BENCH_3 (40-event schedule, seed 3), " +
			"Q16 = 65536 nodes with 40 faults, GOMAXPROCS=" + strconv.Itoa(runtime.GOMAXPROCS(0)),
		Claim: fmt.Sprintf("the flat data plane (dense []uint8 tables, bitset sets, pooled repair "+
			"scratch) replays the BENCH_3 churn schedule in %d B/op against the map-based plane's "+
			"1105011 B/op (%.1fx fewer bytes), and holds single-node repair at Q16 to microseconds "+
			"against a cold sharded sweep of all 65536 nodes", results[0].BytesPerOp, ratio),
		Results: results,
	}
	if ratio < 10 {
		t.Fatalf("acceptance: repair replay bytes/op %d is only %.1fx below the BENCH_3 baseline (need >= 10x)",
			results[0].BytesPerOp, ratio)
	}

	f, err := os.Create("BENCH_7.json")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote BENCH_7.json: %+v", report.Results)
}
