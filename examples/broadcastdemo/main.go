// Broadcasting with safety levels: the application that originated the
// safety level concept (the paper's reference [9]). A safe source
// builds a spanning binomial tree whose subtrees are assigned
// largest-to-safest — the rank-i child of a safe node has level >= i,
// exactly enough for an i-dimensional subtree. Unsafe sources may miss
// nodes; the library patches every miss with a safety-level unicast.
package main

import (
	"fmt"
	"log"
	"sort"

	safecube "repro"
)

func main() {
	cube := safecube.MustNew(4)
	if err := cube.FailNamed("0011", "0100", "0110", "1001"); err != nil { // Fig. 1
		log.Fatal(err)
	}
	levels := cube.ComputeLevels()

	// Broadcast from a safe node: the tree alone covers the component.
	src := cube.MustParse("1110")
	fmt.Printf("source %s is %d-safe\n", cube.Format(src), levels.Level(src))
	res := cube.Broadcast(src)
	fmt.Printf("covered %d nodes in %d rounds with %d tree messages (missed: %d)\n",
		len(res.Depth), res.Rounds, res.Messages, len(res.Missed))
	printByDepth(cube, res)

	// Broadcast from an unsafe node: the tree may miss nodes; the
	// unicast fallback closes the gap, guaranteed whenever unicast
	// admission holds — always below n faults (Property 2), so this
	// demo uses the paper's 3-fault cube from Section 2.3.
	cube2 := safecube.MustNew(4)
	if err := cube2.FailNamed("0000", "0110", "1111"); err != nil {
		log.Fatal(err)
	}
	levels2 := cube2.ComputeLevels()
	src2 := cube2.MustParse("0010")
	fmt.Printf("\nsource %s is %d-safe (3 faults < n = 4: full coverage guaranteed)\n",
		cube2.Format(src2), levels2.Level(src2))
	res2 := cube2.Broadcast(src2)
	fmt.Printf("covered %d nodes in %d rounds; tree missed %d, repaired %d via unicast (+%d hops)\n",
		len(res2.Depth), res2.Rounds, len(res2.Missed), len(res2.Repaired), res2.RepairMessages)
	if !res2.Covered() {
		log.Fatal("broadcast failed to cover the component")
	}

	// At n or more faults even repair can fall short: the same 4-fault
	// cube from the weakest source shows the detectable shortfall.
	src3 := cube.MustParse("0001")
	res3 := cube.Broadcast(src3)
	fmt.Printf("\nsource %s is %d-safe with n = 4 faults: covered %d, unreachable by any admitted route: %d\n",
		cube.Format(src3), levels.Level(src3), len(res3.Depth),
		len(res3.Missed)-len(res3.Repaired))
}

func printByDepth(cube *safecube.Cube, res *safecube.BroadcastResult) {
	byDepth := map[int][]string{}
	maxD := 0
	for a, d := range res.Depth {
		byDepth[d] = append(byDepth[d], cube.Format(a))
		if d > maxD {
			maxD = d
		}
	}
	for d := 0; d <= maxD; d++ {
		sort.Strings(byDepth[d])
		fmt.Printf("  depth %d: %v\n", d, byDepth[d])
	}
}
