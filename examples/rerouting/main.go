// Mid-flight failures and demand-driven re-routing (Section 2.2): a
// unicast is admitted and starts moving; nodes on its way die; the
// message blocks, the safety levels are recomputed (state-change-driven
// GS), and the unicast is re-admitted from the node currently holding
// the message — or aborted there if no condition holds anymore.
package main

import (
	"fmt"
	"log"

	safecube "repro"
)

func main() {
	cube := safecube.MustNew(5)
	src, dst := cube.MustParse("00000"), cube.MustParse("00111")

	sess, cond, outcome := cube.StartUnicast(src, dst)
	fmt.Printf("admitted %s -> %s: %s via %s\n",
		cube.Format(src), cube.Format(dst), outcome, cond)

	// First hop goes through.
	if _, err := sess.Step(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("message now at %s\n", cube.Format(sess.At()))

	// Disaster: both remaining preferred neighbors fail.
	for _, addr := range []string{"00011", "00101"} {
		if err := cube.FailNode(cube.MustParse(addr)); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("node %s failed!\n", addr)
	}

	// The next step detects the blockage instead of walking into a
	// dead node.
	if _, err := sess.Step(); err != safecube.ErrBlocked {
		log.Fatalf("expected blockage, got %v", err)
	}
	fmt.Println("route blocked; recomputing safety levels (state-change-driven GS)")

	// Re-admission from the current node: the fresh levels admit a C3
	// detour around the dead pair.
	cond2, outcome2 := sess.Reroute()
	if outcome2 == safecube.Failure {
		log.Fatal("reroute failed")
	}
	fmt.Printf("re-admitted from %s: %s via %s\n", cube.Format(sess.At()), outcome2, cond2)

	if _, err := sess.Run(); err != nil {
		log.Fatal(err)
	}
	path := make([]string, 0, len(sess.Path()))
	for _, a := range sess.Path() {
		path = append(path, cube.Format(a))
	}
	fmt.Printf("delivered in %d hops after %d reroute(s): %v\n",
		sess.Hops(), sess.Reroutes(), path)
}
