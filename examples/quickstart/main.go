// Quickstart: build a faulty hypercube, compute safety levels, and
// route a unicast — reproducing the paper's Fig. 1 walkthrough.
package main

import (
	"fmt"
	"log"

	safecube "repro"
)

func main() {
	// A 4-dimensional hypercube with the paper's Fig. 1 fault set.
	cube := safecube.MustNew(4)
	if err := cube.FailNamed("0011", "0100", "0110", "1001"); err != nil {
		log.Fatal(err)
	}

	// Safety levels are computed by n-1 rounds of neighbor information
	// exchange (the GS algorithm). A node with level k has a guaranteed
	// Hamming-distance path to every node within distance k.
	levels := cube.ComputeLevels()
	fmt.Printf("levels stabilized in %d rounds (worst case %d)\n",
		levels.Rounds(), cube.Dim()-1)
	for a := 0; a < cube.Nodes(); a++ {
		id := safecube.NodeID(a)
		fmt.Printf("  S(%s) = %d\n", cube.Format(id), levels.Level(id))
	}

	// The feasibility of a unicast is decided locally at the source by
	// comparing safety levels with the Hamming distance.
	src := cube.MustParse("1110")
	dst := cube.MustParse("0001")
	cond, outcome := cube.Feasibility(src, dst)
	fmt.Printf("\nunicast %s -> %s: condition %s admits a(n) %s route\n",
		cube.Format(src), cube.Format(dst), cond, outcome)

	// Route it: each hop forwards to the preferred neighbor with the
	// highest safety level.
	route := cube.Unicast(src, dst)
	fmt.Printf("path (%d hops, H = %d): %s\n",
		route.Hops(), route.Hamming, route.PathString(cube))

	// The second worked example of the paper: the source is only
	// 1-safe, but a preferred neighbor with level H-1 still admits an
	// optimal unicast (condition C2).
	route2 := cube.Unicast(cube.MustParse("0001"), cube.MustParse("1100"))
	fmt.Printf("unicast 0001 -> 1100: %s via %s: %s\n",
		route2.Outcome, route2.Condition, route2.PathString(cube))
}
