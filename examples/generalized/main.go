// Generalized hypercubes: the paper's Section 4.2 / Fig. 5 scenario.
// In GH(2x3x2) each dimension i is a complete graph over m_i sibling
// nodes, so any dimension is crossed in one hop and the distance between
// two nodes is the number of differing coordinates. Definition 4
// reduces each dimension to the minimum sibling level, then applies the
// binary cube's level formula — and routing is exactly the same
// highest-level-preferred-candidate rule.
package main

import (
	"fmt"
	"log"

	safecube "repro"
)

func main() {
	gh := safecube.MustNewGeneralized(2, 3, 2) // m2 x m1 x m0 = 2 x 3 x 2
	if err := gh.FailNamed("011", "100", "111", "121"); err != nil {
		log.Fatal(err)
	}

	levels := gh.ComputeLevels()
	fmt.Printf("GH(2x3x2), %d nodes, levels stabilized in %d rounds\n",
		gh.Nodes(), levels.Rounds())
	for a := 0; a < gh.Nodes(); a++ {
		id := safecube.GNodeID(a)
		mark := ""
		if gh.NodeFaulty(id) {
			mark = " (faulty)"
		} else if levels.Level(id) == gh.Dim() {
			mark = " (safe)"
		}
		fmt.Printf("  S(%s) = %d%s\n", gh.Format(id), levels.Level(id), mark)
	}
	fmt.Printf("safe nodes: %d (paper: four)\n\n", len(levels.SafeSet()))

	// The paper's worked route: 010 -> 101 differ in all three
	// coordinates. The dimension-0 candidate 011 is faulty and the
	// dimension-2 candidate 110 has level 1 < H-1 = 2; the dimension-1
	// candidate 000 carries the route.
	src, dst := gh.MustParse("010"), gh.MustParse("101")
	r := gh.Unicast(src, dst)
	fmt.Printf("unicast %s -> %s (distance %d): %s via %s\n",
		gh.Format(src), gh.Format(dst), r.Distance, r.Outcome, r.Condition)
	fmt.Printf("path: %s\n", r.PathString(gh))
	fmt.Println("(paper: 010 -> 000 -> 001 -> 101)")

	// Every unicast out of a safe node is optimal.
	for _, s := range levels.SafeSet() {
		worst := 0
		for d := 0; d < gh.Nodes(); d++ {
			did := safecube.GNodeID(d)
			if gh.NodeFaulty(did) {
				continue
			}
			rr := gh.Unicast(s, did)
			if rr.Outcome != safecube.Optimal {
				log.Fatalf("route from safe node %s to %s not optimal", gh.Format(s), gh.Format(did))
			}
			if rr.Hops() > worst {
				worst = rr.Hops()
			}
		}
		fmt.Printf("safe node %s: optimal to every nonfaulty node (longest path %d hops)\n",
			gh.Format(s), worst)
	}
}
