// Distributed execution: the paper's protocols running on a real
// message-passing substrate — one goroutine per nonfaulty node, one
// channel per inbox. The GS status algorithm runs as n-1 bulk-
// synchronous rounds of level exchange (exactly one message per
// directed live link per round); unicasts then travel hop by hop
// through the node goroutines. Between protocol phases nodes can be
// fail-stopped, after which the paper's state-change-driven strategy
// recomputes the levels.
package main

import (
	"fmt"
	"log"

	safecube "repro"
)

func main() {
	const n = 7
	cube := safecube.MustNew(n)
	if err := cube.InjectRandomFaults(1995, 6); err != nil { // 6 < n: guarantees hold
		log.Fatal(err)
	}
	fmt.Printf("%s\n", cube)

	dist := cube.Distributed()
	defer dist.Close()

	// Phase 1: distributed GS.
	dist.RunGS()
	fmt.Printf("distributed GS: %d messages, stable at round %d (bound n-1 = %d)\n",
		dist.MessagesSent(), dist.StableRound(), n-1)

	// Cross-check against the sequential fixpoint.
	seq := cube.ComputeLevels()
	distLevels := dist.Levels()
	for a := 0; a < cube.Nodes(); a++ {
		if distLevels[a] != seq.Level(safecube.NodeID(a)) {
			log.Fatalf("distributed and sequential levels disagree at node %d", a)
		}
	}
	fmt.Println("distributed levels == sequential fixpoint at every node")

	// Phase 2: hop-by-hop unicasts. With fewer than n faults, Property
	// 2 guarantees no unicast between nonfaulty nodes ever fails.
	delivered, optimal := 0, 0
	for a := 0; a < 40; a++ {
		src := safecube.NodeID((a * 37) % cube.Nodes())
		dst := safecube.NodeID((a*91 + 13) % cube.Nodes())
		if cube.NodeFaulty(src) || cube.NodeFaulty(dst) || src == dst {
			continue
		}
		r := dist.Unicast(src, dst)
		if r.Outcome == safecube.Failure {
			log.Fatalf("unicast %s -> %s failed below n faults: %v",
				cube.Format(src), cube.Format(dst), r.Err)
		}
		delivered++
		if r.Outcome == safecube.Optimal {
			optimal++
		}
	}
	fmt.Printf("unicasts: %d delivered, %d optimal, 0 failed\n", delivered, optimal)

	// Phase 3: a node dies; state-change-driven maintenance recomputes.
	var victim safecube.NodeID
	for a := 0; a < cube.Nodes(); a++ {
		if !cube.NodeFaulty(safecube.NodeID(a)) {
			victim = safecube.NodeID(a)
			break
		}
	}
	before := dist.MessagesSent()
	if err := dist.KillNode(victim); err != nil {
		log.Fatal(err)
	}
	dist.RunGS()
	fmt.Printf("node %s fail-stopped; recomputation cost %d messages, stable at round %d\n",
		cube.Format(victim), dist.MessagesSent()-before, dist.StableRound())

	seq2 := cube.ComputeLevels()
	for a, lv := range dist.Levels() {
		if lv != seq2.Level(safecube.NodeID(a)) {
			log.Fatalf("post-failure levels disagree at node %d", a)
		}
	}
	fmt.Println("post-failure distributed levels verified against the sequential fixpoint")
}
