// Link faults: the paper's Section 4.1 / Fig. 4 scenario. A 4-cube has
// four faulty nodes and one faulty link. The two end nodes of the dead
// link (set N2) declare themselves faulty to the rest of the cube —
// exposing safety level 0 — but keep routing with their own level,
// computed once in the last round of the extended GS algorithm while
// treating only the far end of the dead link as faulty.
package main

import (
	"fmt"
	"log"

	safecube "repro"
)

func main() {
	cube := safecube.MustNew(4)
	if err := cube.FailNamed("0000", "0100", "1100", "1110"); err != nil {
		log.Fatal(err)
	}
	if err := cube.FailLink(cube.MustParse("1000"), cube.MustParse("1001")); err != nil {
		log.Fatal(err)
	}

	levels := cube.ComputeLevels()
	fmt.Println("node   public  own")
	for a := 0; a < cube.Nodes(); a++ {
		id := safecube.NodeID(a)
		note := ""
		if levels.OwnLevel(id) != levels.Level(id) {
			note = "  <- N2: adjacent faulty link"
		}
		if cube.NodeFaulty(id) {
			note = "  (faulty)"
		}
		fmt.Printf("%s   %d       %d%s\n",
			cube.Format(id), levels.Level(id), levels.OwnLevel(id), note)
	}

	// The paper's walkthrough: 1101 must reach 1000 (H = 2). Both
	// preferred neighbors are unusable (1100 faulty, 1001 publicly 0),
	// so no Hamming path exists — but spare neighbor 1111 has level
	// 4 >= H+1, admitting a suboptimal route of length H+2.
	src, dst := cube.MustParse("1101"), cube.MustParse("1000")
	fmt.Printf("\noptimal path 1101 -> 1000 survives: %v\n", cube.OptimalPathExists(src, dst))
	r := cube.Unicast(src, dst)
	fmt.Printf("unicast 1101 -> 1000: %s via %s\n", r.Outcome, r.Condition)
	fmt.Printf("path (%d hops = H+2): %s\n", r.Hops(), r.PathString(cube))
	fmt.Println("(paper: 1101 -> 1111 -> 1011 -> 1010 -> 1000)")

	// An N2 node can still originate unicasts using its own level.
	r2 := cube.Unicast(cube.MustParse("1001"), cube.MustParse("1011"))
	fmt.Printf("\nunicast from N2 node 1001 -> 1011: %s, path %s\n",
		r2.Outcome, r2.PathString(cube))
}
