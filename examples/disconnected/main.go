// Disconnected hypercubes: the paper's Fig. 3 scenario. Four faults
// split the surviving nodes of a 4-cube into two parts; safety-level
// routing keeps working inside each part and *detects* — at the source,
// before moving any message — every unicast that would have to cross
// the partition. (The prior safe-node schemes of Lee–Hayes and Chiu–Wu
// are inapplicable here: Theorem 4 shows their safe sets are empty in
// any disconnected hypercube.)
package main

import (
	"fmt"
	"log"

	safecube "repro"
)

func main() {
	cube := safecube.MustNew(4)
	if err := cube.FailNamed("0110", "1010", "1100", "1111"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s, connected: %v\n\n", cube, cube.Connected())

	show := func(from, to string) {
		src, dst := cube.MustParse(from), cube.MustParse(to)
		r := cube.Unicast(src, dst)
		switch r.Outcome {
		case safecube.Failure:
			fmt.Printf("%s -> %s: ABORTED at the source (condition %s)\n",
				from, to, r.Condition)
			fmt.Println("   every admission condition failed: either too many faults")
			fmt.Println("   in the neighborhood, or the destination is in another part")
		default:
			fmt.Printf("%s -> %s: %s via %s, path %s\n",
				from, to, r.Outcome, r.Condition, r.PathString(cube))
		}
	}

	// Within the large component routing stays optimal.
	show("0101", "0000") // paper: C1, S(0101) = 2 = H
	show("0111", "1011") // paper: C2 via preferred neighbor 0011

	// Node 1110 is walled off by the four faults. Both directions are
	// detected at the source.
	show("0111", "1110")
	show("1110", "0000")

	// The feasibility check alone (no message movement) gives the same
	// answer, so an application can probe before committing traffic.
	cond, outcome := cube.Feasibility(cube.MustParse("0111"), cube.MustParse("1110"))
	fmt.Printf("\nfeasibility probe 0111 -> 1110: condition=%s outcome=%s\n", cond, outcome)
}
