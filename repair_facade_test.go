package safecube

import "testing"

// TestCubeCacheRepair covers the incremental-repair path of the
// generation-keyed level cache: after a fault mutation the facade patches
// the stale assignment through core.RepairLevels instead of recomputing
// cold, the event still counts as a cache miss (back-compat with the
// invalidation contract), a repairs counter distinguishes it, and the
// patched levels are bit-identical to a cold computation on the same
// fault state.
func TestCubeCacheRepair(t *testing.T) {
	c := MustNew(6)
	reg := NewRegistry()
	c.Instrument(reg)
	c.ComputeLevels() // cold fill

	mutate := []func() error{
		func() error { return c.FailNamed("000001") },
		func() error { return c.FailNamed("000011") },
		func() error { return c.FailLink(c.MustParse("000000"), c.MustParse("000100")) },
		func() error { return c.RecoverNode(c.MustParse("000001")) },
	}
	for i, m := range mutate {
		if err := m(); err != nil {
			t.Fatal(err)
		}
		lv := c.ComputeLevels()

		ref := MustNew(6)
		for _, a := range c.FaultyNodes() {
			if err := ref.FailNode(a); err != nil {
				t.Fatal(err)
			}
		}
		if i >= 2 {
			if err := ref.FailLink(ref.MustParse("000000"), ref.MustParse("000100")); err != nil {
				t.Fatal(err)
			}
		}
		cold := ref.ComputeLevels()
		for a := 0; a < c.Nodes(); a++ {
			id := NodeID(a)
			if lv.Level(id) != cold.Level(id) || lv.OwnLevel(id) != cold.OwnLevel(id) {
				t.Fatalf("mutation %d: node %s repaired %d/%d, cold %d/%d", i, c.Format(id),
					lv.Level(id), lv.OwnLevel(id), cold.Level(id), cold.OwnLevel(id))
			}
		}
	}

	repairs := counter(t, reg, MetricLevelsCacheRepairs)
	misses := counter(t, reg, MetricLevelsCacheMisses)
	if repairs != int64(len(mutate)) {
		t.Fatalf("repairs counter = %d, want %d", repairs, len(mutate))
	}
	if misses != int64(len(mutate))+1 {
		t.Fatalf("misses counter = %d, want %d (repairs still count as misses)", misses, len(mutate)+1)
	}
	if tr := reg.LastGS(); tr == nil || tr.Kind != "repair" {
		t.Fatalf("last GS trace = %+v, want Kind \"repair\"", tr)
	}
}

// TestGeneralizedCacheRepair is the mixed-radix twin of
// TestCubeCacheRepair.
func TestGeneralizedCacheRepair(t *testing.T) {
	g := MustNewGeneralized(2, 3, 2)
	reg := NewRegistry()
	g.Instrument(reg)
	g.ComputeLevels() // cold fill

	if err := g.FailNamed("010"); err != nil {
		t.Fatal(err)
	}
	lv := g.ComputeLevels()

	ref := MustNewGeneralized(2, 3, 2)
	if err := ref.FailNamed("010"); err != nil {
		t.Fatal(err)
	}
	cold := ref.ComputeLevels()
	for a := 0; a < g.Nodes(); a++ {
		id := GNodeID(a)
		if lv.Level(id) != cold.Level(id) || lv.OwnLevel(id) != cold.OwnLevel(id) {
			t.Fatalf("node %s repaired %d/%d, cold %d/%d", g.Format(id),
				lv.Level(id), lv.OwnLevel(id), cold.Level(id), cold.OwnLevel(id))
		}
	}
	if got := counter(t, reg, MetricLevelsCacheRepairs); got != 1 {
		t.Fatalf("repairs counter = %d, want 1", got)
	}
	if tr := reg.LastGS(); tr == nil || tr.Kind != "repair" {
		t.Fatalf("last GS trace = %+v, want Kind \"repair\"", tr)
	}
}
