package safecube

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"testing"

	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/stats"
	"repro/internal/topo"
)

// TestEmitBenchJSON6 regenerates BENCH_6.json, the committed overhead
// measurement of the always-on flight recorder. It shares the
// BENCH_1..5 gate:
//
//	EMIT_BENCH_JSON=1 go test -run TestEmitBenchJSON .
//
// The claim under test is the recorder's admission ticket: the serving
// read path with the recorder on (the default) must stay within 5% of
// the same path with the recorder disabled (Options{NoFlight: true}).
// Both cells replay the identical seeded request stream over the same
// Q10/12-fault service the serve benchmarks use; each cell is run
// several times and the medians are compared, like the bench-gate does.
// A third cell isolates the recorder primitive itself (ID + pack +
// seqlock ring write + anomaly check).
func TestEmitBenchJSON6(t *testing.T) {
	if os.Getenv("EMIT_BENCH_JSON") == "" {
		t.Skip("set EMIT_BENCH_JSON=1 to regenerate BENCH_6.json")
	}

	const (
		dim    = 10
		nFault = 12
		runs   = 7
	)
	tp := topo.MustCube(dim)
	newService := func(opts serve.Options) *serve.Service {
		set := faults.NewSet(tp)
		if err := faults.InjectUniform(set, stats.NewRNG(42), nFault); err != nil {
			t.Fatal(err)
		}
		svc, err := serve.New(set, opts)
		if err != nil {
			t.Fatal(err)
		}
		return svc
	}

	median := func(ns []float64) float64 {
		sort.Float64s(ns)
		return ns[len(ns)/2]
	}
	nsOp := func(bench func(b *testing.B)) float64 {
		r := testing.Benchmark(bench)
		return float64(r.T.Nanoseconds()) / float64(r.N)
	}

	routeCell := func(opts serve.Options) func(b *testing.B) {
		return func(b *testing.B) {
			svc := newService(opts)
			defer svc.Close()
			nodes := tp.Nodes()
			ctx := context.Background()
			rng := stats.NewRNG(17)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				src := topo.NodeID(rng.Intn(nodes))
				dst := topo.NodeID(rng.Intn(nodes))
				if _, err := svc.RouteCtx(ctx, src, dst); err != nil {
					b.Fatal(err)
				}
			}
		}
	}

	// Interleave the two route cells run-by-run (alternating order
	// inside each pair) so clock drift, thermal throttling and GC state
	// bias both sides equally instead of whichever cell ran last.
	flightBody := routeCell(serve.Options{})
	noflightBody := routeCell(serve.Options{NoFlight: true})
	var flightRuns, noflightRuns []float64
	for i := 0; i < runs; i++ {
		if i%2 == 0 {
			flightRuns = append(flightRuns, nsOp(flightBody))
			noflightRuns = append(noflightRuns, nsOp(noflightBody))
		} else {
			noflightRuns = append(noflightRuns, nsOp(noflightBody))
			flightRuns = append(flightRuns, nsOp(flightBody))
		}
	}
	flightNS := median(flightRuns)
	noflightNS := median(noflightRuns)
	recordNS := nsOp(func(b *testing.B) {
		f := obs.NewFlightRecorder(obs.FlightOptions{Records: 4096})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rec := obs.FlightRecord{
				ID: f.NextID(), Kind: obs.ReqRoute, Gen: 7,
				LatencyUS: 12, Hamming: 5, Hops: 5, Items: 1,
				Cond: obs.CondCodeC1, Outcome: obs.OutcomeOptimal,
			}
			if reason := f.Record(&rec); reason != "" {
				b.Fatal(reason)
			}
		}
	})

	overheadPct := (flightNS - noflightNS) / noflightNS * 100
	if overheadPct > 5 {
		t.Errorf("flight recorder overhead %.1f%% (%.0fns vs %.0fns) exceeds the 5%% budget",
			overheadPct, flightNS, noflightNS)
	}

	type cell struct {
		Name string  `json:"name"`
		NsOp float64 `json:"ns_per_op"`
	}
	report := struct {
		Config      string  `json:"config"`
		Claim       string  `json:"claim"`
		OverheadPct float64 `json:"flight_overhead_pct"`
		BudgetPct   float64 `json:"budget_pct"`
		Runs        int     `json:"runs_per_cell_median"`
		Results     []cell  `json:"results"`
	}{
		Config: fmt.Sprintf("Q%d (%d nodes), %d faults seed 42, RouteCtx over a seeded "+
			"uniform pair stream, median of %d runs per cell, GOMAXPROCS=%d",
			dim, tp.Nodes(), nFault, runs, runtime.GOMAXPROCS(0)),
		Claim: fmt.Sprintf("the always-on flight recorder (request ID, packed seqlock ring "+
			"record, anomaly check, histogram exemplar) costs %.1f%% on the hardened read "+
			"path: %.0fns/op with the recorder on vs %.0fns/op disabled, within the 5%% "+
			"budget; the recorder primitive alone is %.0fns/op with zero allocations",
			overheadPct, flightNS, noflightNS, recordNS),
		OverheadPct: overheadPct,
		BudgetPct:   5,
		Runs:        runs,
		Results: []cell{
			{Name: "routectx/flight=on", NsOp: flightNS},
			{Name: "routectx/flight=off", NsOp: noflightNS},
			{Name: "flight/record", NsOp: recordNS},
		},
	}

	f, err := os.Create("BENCH_6.json")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote BENCH_6.json: %.0fns flight vs %.0fns noflight (%.1f%% overhead)",
		flightNS, noflightNS, overheadPct)
}
