package safecube

import (
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/topo"
)

// Observability surface of the public API. A Registry collects
// lock-cheap counters, gauges and histograms plus structured traces of
// the two protocols the paper costs out: unicast routing (admission
// condition, per-hop decisions, reroutes, path length vs Hamming
// distance) and GS/EGS level computation (rounds to stabilize, per-round
// level deltas, per-link message counts). Instrumentation is strictly
// opt-in: an uninstrumented Cube pays one nil-check per decision point.
//
// Export the registry with WriteJSON (expvar-style), WritePrometheus
// (text exposition format), or serve it over HTTP with Mux()/Publish().
// The cmd/slmetrics tool wraps all three.

// Registry is the metric and trace collector (see internal/obs).
type Registry = obs.Registry

// RouteTrace is the structured event sequence of one traced unicast.
type RouteTrace = obs.RouteTrace

// RouteEvent is one entry of a RouteTrace.
type RouteEvent = obs.RouteEvent

// GSTrace records one run of the safety-level computation.
type GSTrace = obs.GSTrace

// EventKind discriminates RouteEvent entries.
type EventKind = obs.EventKind

// Trace event kinds (re-exported from the instrumentation core).
const (
	EvAdmit   = obs.EvAdmit
	EvHop     = obs.EvHop
	EvBlocked = obs.EvBlocked
	EvReroute = obs.EvReroute
	EvAbort   = obs.EvAbort
	EvDone    = obs.EvDone
)

// Metric names (see the README metric reference table) — the keys under
// which an instrumented Cube's counters appear in Registry snapshots and
// exports.
const (
	MetricUnicastsTotal      = obs.MetricUnicastsTotal
	MetricOutcomeOptimal     = obs.MetricOutcomeOptimal
	MetricOutcomeSuboptimal  = obs.MetricOutcomeSuboptimal
	MetricOutcomeFailure     = obs.MetricOutcomeFailure
	MetricHopsTotal          = obs.MetricHopsTotal
	MetricSpareHopsTotal     = obs.MetricSpareHopsTotal
	MetricBlockedTotal       = obs.MetricBlockedTotal
	MetricReroutesTotal      = obs.MetricReroutesTotal
	MetricRerouteAbortsTotal = obs.MetricRerouteAbortsTotal
	MetricLevelsCacheHits    = obs.MetricLevelsCacheHits
	MetricLevelsCacheMisses  = obs.MetricLevelsCacheMisses
	MetricLevelsCacheRepairs = obs.MetricLevelsCacheRepairs
	MetricGSRunsTotal        = obs.MetricGSRunsTotal
	MetricGSLastRounds       = obs.MetricGSLastRounds
	MetricGSRepairRounds     = obs.MetricGSRepairRounds
	MetricGSRepairDirtyNodes = obs.MetricGSRepairDirtyNodes
	MetricGSRepairEvals      = obs.MetricGSRepairEvals
)

// Serving metric names — the keys under which a Server started with a
// Registry reports its snapshot, apply-queue, and query counters.
const (
	MetricServeSnapshotGen    = obs.MetricServeSnapshotGen
	MetricServeSwapsTotal     = obs.MetricServeSwapsTotal
	MetricServeSwapLastNs     = obs.MetricServeSwapLastNs
	MetricServeSwapMicros     = obs.MetricServeSwapMicros
	MetricServeRepairsTotal   = obs.MetricServeRepairsTotal
	MetricServeColdTotal      = obs.MetricServeColdTotal
	MetricServeQueueDepth     = obs.MetricServeQueueDepth
	MetricServeApplyTotal     = obs.MetricServeApplyTotal
	MetricServeApplyErrors    = obs.MetricServeApplyErrors
	MetricServeApplyRejected  = obs.MetricServeApplyRejected
	MetricServeApplyCoalesced = obs.MetricServeApplyCoalesced
	MetricServeRoutesTotal    = obs.MetricServeRoutesTotal
	MetricServeStaleReads     = obs.MetricServeStaleReads
	MetricServeBatchesTotal   = obs.MetricServeBatchesTotal
	MetricServeBatchItems     = obs.MetricServeBatchItems
	MetricServeFanoutsTotal   = obs.MetricServeFanoutsTotal
	MetricServeFanoutItems    = obs.MetricServeFanoutItems
	MetricServeSnapshotAgeUs  = obs.MetricServeSnapshotAgeUs
	MetricServeRepairLag      = obs.MetricServeRepairLag
	MetricServeQueueHWM       = obs.MetricServeQueueHWM
	MetricFlightRecords       = obs.MetricFlightRecords
	MetricFlightIncidents     = obs.MetricFlightIncidents
)

// Flight recorder surface (see internal/obs/flight.go): the always-on
// low-overhead ring of per-request records a Server feeds, plus the
// bounded incident buffer anomalous requests are promoted to with
// their full per-hop trace.
type (
	// FlightRecorder is the lock-free request recorder.
	FlightRecorder = obs.FlightRecorder
	// FlightOptions size a FlightRecorder.
	FlightOptions = obs.FlightOptions
	// FlightRecord is one request's compact flight entry.
	FlightRecord = obs.FlightRecord
	// FlightSnapshot is the exported view of the flight ring.
	FlightSnapshot = obs.FlightSnapshot
	// Incident is one promoted anomaly with its trace.
	Incident = obs.Incident
	// IncidentSnapshot is the exported view of the incident buffer.
	IncidentSnapshot = obs.IncidentSnapshot
	// ReqKind classifies flight-recorded requests.
	ReqKind = obs.ReqKind
	// FlightErrClass buckets the serving-path error of a flight record.
	FlightErrClass = obs.ErrClass
)

// NewFlightRecorder builds a flight recorder sized by opts; pass it to
// ServeOptions.Flight to share one recorder across Servers or override
// the default sizing. A Server started without one builds its own.
func NewFlightRecorder(opts FlightOptions) *FlightRecorder {
	return obs.NewFlightRecorder(opts)
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry { return obs.NewRegistry() }

// Instrument attaches a registry to the cube: from now on level
// (re)computations, cache hits/misses, unicast admissions, hops,
// reroutes and outcomes are counted, and Distributed engines started
// from this cube inherit the registry for protocol-cost metrics.
// Instrument(nil) detaches. Returns the cube for chaining.
func (c *Cube) Instrument(r *Registry) *Cube {
	c.reg = r
	c.routeObs = r.RouteObserver()
	c.cacheHits = r.Counter(obs.MetricLevelsCacheHits)
	c.cacheMisses = r.Counter(obs.MetricLevelsCacheMisses)
	c.cacheRepairs = r.Counter(obs.MetricLevelsCacheRepairs)
	return c
}

// Registry returns the attached registry (nil when uninstrumented).
func (c *Cube) Registry() *Registry { return c.reg }

// traceObserver builds a single-use traced observer for one unicast,
// backed by the cube's registry (or a throwaway one, so tracing works on
// uninstrumented cubes too).
func (c *Cube) traceObserver(s, d NodeID) *obs.RouteObserver {
	ro := c.routeObs
	if ro == nil {
		ro = obs.NewRegistry().RouteObserver()
	}
	// Stamp the trace with the fault-set generation the unicast routes
	// against, so traces collected under churn stay attributable to one
	// level state.
	return ro.WithTraceGen(int(s), int(d), topo.Hamming(s, d), c.set.Generation())
}

// UnicastTraced routes like Unicast and additionally records the full
// decision trace: the admission condition that held, every hop with its
// dimension and preferred-vs-spare role, and the final outcome with path
// length vs Hamming distance. Tracing allocates per event; use Unicast
// on hot paths.
func (c *Cube) UnicastTraced(s, d NodeID) (*Route, *RouteTrace) {
	lv := c.ComputeLevels()
	ro := c.traceObserver(s, d)
	r := core.NewRouter(lv.as, nil).Observe(ro).Unicast(s, d)
	return &Route{
		Source:    r.Source,
		Dest:      r.Dest,
		Hamming:   r.Hamming,
		Outcome:   r.Outcome,
		Condition: r.Condition,
		Path:      append([]NodeID(nil), r.Path...),
		Err:       r.Err,
	}, ro.Trace()
}

// StartUnicastTraced admits a unicast like StartUnicast and returns the
// live trace alongside the session: events accumulate as the caller
// Steps, injects faults, and Reroutes — the instrument for the paper's
// Section 2.2 demand-driven scenario. The trace is complete once the
// session is Done (or abandoned after a failed Reroute).
func (c *Cube) StartUnicastTraced(s, d NodeID) (*RouteSession, *RouteTrace, Condition, Outcome) {
	lv := c.ComputeLevels()
	ro := c.traceObserver(s, d)
	sess, cond, out := core.NewRouter(lv.as, nil).Observe(ro).Start(s, d)
	if sess == nil {
		return nil, ro.Trace(), cond, out
	}
	return &RouteSession{sess: sess, cube: c}, ro.Trace(), cond, out
}
