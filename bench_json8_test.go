package safecube

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strconv"
	"testing"
	"time"

	"repro/internal/wire"
)

// TestEmitBenchJSON8 regenerates BENCH_8.json, the committed
// measurement of the binary wire data plane against the HTTP/JSON
// serving path. It shares the BENCH_1..7 gate:
//
//	EMIT_BENCH_JSON=1 go test -run TestEmitBenchJSON .
//
// (or `make bench-json`). Both sides drive the SAME Q10 engine (12
// faults, seed 42) over real loopback sockets with parallel clients,
// one route per op, at the same GOMAXPROCS — so the ns/op ratio IS the
// req/s-per-core ratio. The acceptance bar for the wire tentpole is
// >= 5x: the coalesced wire client (pipelined OpBatch frames, pooled
// zero-alloc codec) must serve at least five times the routes per core
// of keep-alive HTTP GET /route with JSON responses.
func TestEmitBenchJSON8(t *testing.T) {
	if os.Getenv("EMIT_BENCH_JSON") == "" {
		t.Skip("set EMIT_BENCH_JSON=1 to regenerate BENCH_8.json")
	}

	type entry struct {
		Name        string  `json:"name"`
		NsPerOp     float64 `json:"ns_per_op"`
		AllocsPerOp int64   `json:"allocs_per_op"`
		BytesPerOp  int64   `json:"bytes_per_op"`
	}
	bench := func(name string, fn func(b *testing.B)) entry {
		r := testing.Benchmark(fn)
		return entry{
			Name:        name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
	}

	// One engine per side, identical construction: Q10, 12 uniform
	// faults, seed 42 — the benchService workload in internal/serve.
	newServer := func(fatal func(args ...interface{})) *Server {
		c, err := New(10)
		if err != nil {
			fatal(err)
		}
		if err := c.InjectRandomFaults(42, 12); err != nil {
			fatal(err)
		}
		srv, err := c.Serve(ServeOptions{NoFlight: true})
		if err != nil {
			fatal(err)
		}
		return srv
	}

	results := []entry{
		bench("serve/wire/coalesced-unicast", func(b *testing.B) {
			srv := newServer(b.Fatal)
			defer srv.Close()
			ws, err := srv.ServeWire("127.0.0.1:0", WireOptions{})
			if err != nil {
				b.Fatal(err)
			}
			defer ws.Close()
			cl, err := wire.Dial(ws.Addr(), wire.ClientOptions{Conns: 2})
			if err != nil {
				b.Fatal(err)
			}
			defer cl.Close()
			co := wire.NewCoalescer(cl, wire.CoalescerOptions{MaxBatch: 32, MaxDelay: 100 * time.Microsecond})
			defer co.Close()
			ctx := context.Background()
			b.SetParallelism(32)
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := uint32(0)
				for pb.Next() {
					i++
					if _, _, err := co.Unicast(ctx, i%1024, (i*7)%1024); err != nil {
						b.Fatal(err)
					}
				}
			})
		}),
		bench("serve/wire/batch64-per-route", func(b *testing.B) {
			srv := newServer(b.Fatal)
			defer srv.Close()
			ws, err := srv.ServeWire("127.0.0.1:0", WireOptions{})
			if err != nil {
				b.Fatal(err)
			}
			defer ws.Close()
			cl, err := wire.Dial(ws.Addr(), wire.ClientOptions{})
			if err != nil {
				b.Fatal(err)
			}
			defer cl.Close()
			const batch = 64
			pairs := make([]wire.Pair, batch)
			for i := range pairs {
				pairs[i] = wire.Pair{Src: uint32(i * 3 % 1024), Dst: uint32(i * 11 % 1024)}
			}
			routes := make([]wire.RouteInfo, 0, batch)
			ctx := context.Background()
			b.ReportAllocs()
			b.ResetTimer()
			// b.N ROUTES, not batches, so ns/op is per route and
			// comparable with the other cells.
			for done := 0; done < b.N; done += batch {
				_, out, err := cl.Batch(ctx, pairs, routes)
				if err != nil || len(out) != batch {
					b.Fatal(err)
				}
				routes = out
			}
		}),
		bench("serve/http/route-json", func(b *testing.B) {
			srv := newServer(b.Fatal)
			defer srv.Close()
			mux := http.NewServeMux()
			mux.HandleFunc("/route", func(w http.ResponseWriter, r *http.Request) {
				q := r.URL.Query()
				src, err1 := strconv.Atoi(q.Get("src"))
				dst, err2 := strconv.Atoi(q.Get("dst"))
				if err1 != nil || err2 != nil {
					http.Error(w, "bad node", http.StatusBadRequest)
					return
				}
				rt, err := srv.UnicastCtx(r.Context(), NodeID(src), NodeID(dst))
				if err != nil {
					http.Error(w, err.Error(), http.StatusInternalServerError)
					return
				}
				w.Header().Set("Content-Type", "application/json")
				_ = json.NewEncoder(w).Encode(map[string]any{
					"generation": srv.Generation(),
					"outcome":    rt.Outcome.String(),
					"condition":  rt.Condition.String(),
					"distance":   rt.Hamming,
					"hops":       rt.Hops(),
				})
			})
			hs := httptest.NewServer(mux)
			defer hs.Close()
			tr := &http.Transport{MaxIdleConns: 64, MaxIdleConnsPerHost: 64}
			defer tr.CloseIdleConnections()
			client := &http.Client{Transport: tr}
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				buf := make([]byte, 4096)
				i := uint32(0)
				for pb.Next() {
					i++
					url := fmt.Sprintf("%s/route?src=%d&dst=%d", hs.URL, i%1024, (i*7)%1024)
					resp, err := client.Get(url)
					if err != nil {
						b.Fatal(err)
					}
					for {
						if _, rerr := resp.Body.Read(buf); rerr != nil {
							break
						}
					}
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						b.Fatalf("HTTP %d", resp.StatusCode)
					}
				}
			})
		}),
	}

	ratio := results[2].NsPerOp / results[0].NsPerOp

	report := struct {
		Config  string  `json:"config"`
		Claim   string  `json:"claim"`
		Results []entry `json:"results"`
	}{
		Config: "binary wire protocol vs HTTP/JSON; Q10 engine with 12 uniform faults (seed 42), " +
			"loopback TCP, parallel clients, GOMAXPROCS=" + strconv.Itoa(runtime.GOMAXPROCS(0)),
		Claim: fmt.Sprintf("the coalesced wire data plane (pipelined OpBatch frames over the pooled "+
			"zero-alloc codec) serves a route in %.0f ns against %.0f ns for keep-alive HTTP GET "+
			"/route with JSON — %.1fx the requests per second per core on the identical workload",
			results[0].NsPerOp, results[2].NsPerOp, ratio),
		Results: results,
	}
	if ratio < 5 {
		t.Fatalf("acceptance: wire path is only %.1fx the HTTP req/s-per-core (need >= 5x): wire %.0f ns/op, http %.0f ns/op",
			ratio, results[0].NsPerOp, results[2].NsPerOp)
	}

	f, err := os.Create("BENCH_8.json")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote BENCH_8.json: %+v", report.Results)
}
