package safecube

import (
	"testing"
)

// TestServeFacadeCube checks the public Server wrapper end to end on
// the binary facade: parity with direct Unicast, batch order, fan-out
// indexing, async churn with Flush, and the re-exported metrics.
func TestServeFacadeCube(t *testing.T) {
	c := MustNew(5)
	if err := c.FailNodes(3, 17, 24); err != nil {
		t.Fatal(err)
	}
	if err := c.FailLink(0, 1); err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	srv, err := c.Serve(ServeOptions{Registry: reg, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Parity with the direct facade on the identical fault set.
	for s := 0; s < c.Nodes(); s++ {
		for d := 0; d < c.Nodes(); d++ {
			got := srv.Unicast(NodeID(s), NodeID(d))
			want := c.Unicast(NodeID(s), NodeID(d))
			if got.Outcome != want.Outcome || got.Condition != want.Condition ||
				got.Hamming != want.Hamming || len(got.Path) != len(want.Path) {
				t.Fatalf("route %d->%d: server %+v, facade %+v", s, d, got, want)
			}
			for i := range got.Path {
				if got.Path[i] != want.Path[i] {
					t.Fatalf("route %d->%d path diverges at hop %d", s, d, i)
				}
			}
		}
	}

	// Batch answers in request order; fan-out indexed by destination.
	pairs := []TrafficPair{{0, 31}, {2, 9}, {31, 0}}
	routes := srv.BatchUnicast(pairs)
	if len(routes) != len(pairs) {
		t.Fatalf("batch returned %d routes, want %d", len(routes), len(pairs))
	}
	for i, p := range pairs {
		if routes[i].Source != p.Src || routes[i].Dest != p.Dst {
			t.Fatalf("batch slot %d answered %d->%d, want %d->%d",
				i, routes[i].Source, routes[i].Dest, p.Src, p.Dst)
		}
	}
	all := srv.RouteAll(0)
	if len(all) != c.Nodes() {
		t.Fatalf("RouteAll returned %d slots, want %d", len(all), c.Nodes())
	}
	if all[0] != nil {
		t.Fatal("RouteAll source slot not nil")
	}
	if all[9] == nil || all[9].Dest != 9 {
		t.Fatal("RouteAll slot 9 missing or misindexed")
	}

	// Churn is async but Flush-bounded, and the server's fault state is
	// decoupled from the originating cube's.
	gen := srv.Generation()
	if err := srv.RecoverNode(3); err != nil {
		t.Fatal(err)
	}
	srv.Flush()
	if srv.Generation() <= gen {
		t.Fatalf("generation did not advance past %d", gen)
	}
	if srv.Unicast(3, 0).Outcome == Failure && c.Connected() {
		t.Fatal("recovered node still unroutable")
	}
	if !c.NodeFaulty(3) {
		t.Fatal("server churn leaked into the facade's fault set")
	}

	snap := reg.Snapshot()
	for _, name := range []string{
		MetricServeSnapshotGen, MetricServeSwapsTotal, MetricServeRoutesTotal,
		MetricServeBatchesTotal, MetricServeApplyTotal,
	} {
		if _, ok := snap.Counters[name]; !ok {
			if _, ok := snap.Gauges[name]; !ok {
				t.Fatalf("metric %q missing from registry snapshot", name)
			}
		}
	}

	srv.Close() // idempotent
	if err := srv.FailNode(1); err != ErrServerClosed {
		t.Fatalf("mutator after Close: got %v, want ErrServerClosed", err)
	}
}

// TestServeFacadeGeneralized checks that the same Server type serves
// the generalized facade (GNodeID and NodeID are one type).
func TestServeFacadeGeneralized(t *testing.T) {
	g, err := NewGeneralized(2, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.FailNodes(5, 11); err != nil {
		t.Fatal(err)
	}
	srv, err := g.Serve(ServeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	for s := 0; s < g.Nodes(); s++ {
		for d := 0; d < g.Nodes(); d++ {
			got := srv.Unicast(GNodeID(s), GNodeID(d))
			want := g.Unicast(GNodeID(s), GNodeID(d))
			if got.Outcome != want.Outcome || got.Hamming != want.Distance ||
				len(got.Path) != len(want.Path) {
				t.Fatalf("route %d->%d: server %+v, facade %+v", s, d, got, want)
			}
		}
	}
	lv := g.ComputeLevels()
	for a := 0; a < g.Nodes(); a++ {
		if srv.Level(GNodeID(a)) != lv.Level(GNodeID(a)) {
			t.Fatalf("node %d: server level %d, facade level %d",
				a, srv.Level(GNodeID(a)), lv.Level(GNodeID(a)))
		}
	}
	cond, out := srv.Feasibility(0, 23)
	wc, wo := g.Feasibility(0, 23)
	if cond != wc || out != wo {
		t.Fatalf("feasibility mismatch: (%v,%v) vs (%v,%v)", cond, out, wc, wo)
	}
}
