GO ?= go

.PHONY: all fmt build vet test race fuzz bench-smoke bench-json ci

all: ci

# Fails if any file needs gofmt (mirrors the CI Format step).
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "files need gofmt:" >&2; echo "$$out" >&2; exit 1; fi

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short coverage-guided runs of every fuzz target (seed corpora live
# under the packages' testdata/fuzz directories). FUZZTIME tunes the
# budget per target.
FUZZTIME ?= 30s
fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzLevelFromSorted$$' -fuzztime $(FUZZTIME) ./internal/core
	$(GO) test -run '^$$' -fuzz '^FuzzComputeAndRoute$$' -fuzztime $(FUZZTIME) ./internal/core
	$(GO) test -run '^$$' -fuzz '^FuzzRepairLevels$$' -fuzztime $(FUZZTIME) ./internal/core
	$(GO) test -run '^$$' -fuzz '^FuzzChurnSchedule$$' -fuzztime $(FUZZTIME) ./internal/simnet

# One iteration of every benchmark: catches bit-rot in the measurement
# code without paying for real measurements.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Regenerate BENCH_1.json (the instrumentation-overhead evidence),
# BENCH_2.json (the parallel-GS sweep vs the sequential baseline) and
# BENCH_3.json (incremental repair vs cold GS under churn).
bench-json:
	EMIT_BENCH_JSON=1 $(GO) test -run TestEmitBenchJSON .

ci: fmt vet build race bench-smoke
