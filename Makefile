GO ?= go

.PHONY: all fmt build vet test race fuzz bench-smoke bench-hot bench-json load-smoke flight-smoke scenario-smoke wire-smoke diagnose-smoke scale-smoke cover staticcheck ci

all: ci

# Fails if any file needs gofmt (mirrors the CI Format step).
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "files need gofmt:" >&2; echo "$$out" >&2; exit 1; fi

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short coverage-guided runs of every fuzz target (seed corpora live
# under the packages' testdata/fuzz directories). FUZZTIME tunes the
# budget per target.
FUZZTIME ?= 30s
fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzLevelFromSorted$$' -fuzztime $(FUZZTIME) ./internal/core
	$(GO) test -run '^$$' -fuzz '^FuzzComputeAndRoute$$' -fuzztime $(FUZZTIME) ./internal/core
	$(GO) test -run '^$$' -fuzz '^FuzzRepairLevels$$' -fuzztime $(FUZZTIME) ./internal/core
	$(GO) test -run '^$$' -fuzz '^FuzzChurnSchedule$$' -fuzztime $(FUZZTIME) ./internal/simnet
	$(GO) test -run '^$$' -fuzz '^FuzzWireDecode$$' -fuzztime $(FUZZTIME) ./internal/wire

# One iteration of every benchmark: catches bit-rot in the measurement
# code without paying for real measurements.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# The hot-path benchmark set the CI bench-gate watches. BENCH_OUT
# captures the raw output for benchstat / internal/ci/benchgate; the
# regex must stay in sync with benchgate's default -match. -benchmem
# makes every benchmark report allocs/op so the gate can fail on
# allocation regressions, not just time.
BENCH_HOT = Benchmark(Unicast|GS|Repair|Serve|Flight|Wire)
BENCH_COUNT ?= 6
BENCH_OUT ?= bench.txt
bench-hot:
	$(GO) test -run '^$$' -bench '$(BENCH_HOT)' -benchtime 200ms -benchmem \
		-count $(BENCH_COUNT) -timeout 30m ./... | tee $(BENCH_OUT)

# Regenerate BENCH_1.json (the instrumentation-overhead evidence),
# BENCH_2.json (the parallel-GS sweep vs the sequential baseline),
# BENCH_3.json (incremental repair vs cold GS under churn),
# BENCH_4.json (snapshot serving vs the mutex-guarded facade under a
# churn storm), BENCH_5.json (serving-path tail latency under a churn
# storm, with vs without admission control — EXPERIMENTS.md E17),
# BENCH_6.json (flight-recorder overhead on the hardened read path),
# BENCH_7.json (flat SoA data plane vs the BENCH_3 map-based baseline)
# and BENCH_8.json (binary wire data plane vs the HTTP/JSON path).
bench-json:
	EMIT_BENCH_JSON=1 $(GO) test -run TestEmitBenchJSON .

# Tiny in-process load-generation run (cmd/slload driving the serving
# engine under a churn storm); fails unless enough requests complete
# OK. Wired into CI as an end-to-end smoke of the hardened serving
# path. See docs/OPERATIONS.md for real measurement recipes.
load-smoke:
	$(GO) run ./cmd/slload -n 8 -workers 4 -duration 2s -warmup 200ms \
		-mix route:8,batch:1,routeall:1 -churn 2ms -victims 4 \
		-deadline 1s -min-ok 500 -o /dev/null

# End-to-end flight-recorder smoke: start slserve, drive it briefly
# over HTTP with slload, then assert /debug/flight returns at least one
# parseable trace (internal/ci/flightcheck). Uses a fixed localhost
# port; override FLIGHT_ADDR if it clashes.
FLIGHT_ADDR ?= 127.0.0.1:18080
flight-smoke:
	@$(GO) build -o /tmp/slserve-smoke ./cmd/slserve
	@/tmp/slserve-smoke -n 6 -random 4 -listen $(FLIGHT_ADDR) & \
	pid=$$!; trap 'kill $$pid 2>/dev/null' EXIT; \
	sleep 1; \
	$(GO) run ./cmd/slload -target http://$(FLIGHT_ADDR) -n 6 \
		-workers 2 -duration 1s -warmup 100ms -min-ok 50 \
		-flight -o /dev/null && \
	$(GO) run ./internal/ci/flightcheck http://$(FLIGHT_ADDR)/debug/flight

# Correlated-fault scenario smoke: one short seeded slload pass per
# scenario profile against the in-process engine (the schedule replays
# through the same Target.ApplyEvent surface an HTTP run uses), then
# the scenario unit/differential suites. -min-ok keeps it an
# end-to-end gate, not just a generator check.
scenario-smoke:
	@for p in subcube dimcut rolling flap partition; do \
		echo "# scenario $$p"; \
		$(GO) run ./cmd/slload -n 6 -workers 4 -duration 1s -warmup 100ms \
			-scenario $$p -seed 11 -deadline 1s -min-ok 200 -o /dev/null \
			|| exit 1; \
	done
	$(GO) test -run 'TestScenario|TestRunScenario|TestScheduleReplay' ./...

# End-to-end binary data-plane smoke: start slserve with both surfaces
# up, replay a seeded slload run over the wire protocol (coalesced
# batches + a correlated-fault scenario streamed as OpFaultDelta
# frames), and require an only-OK digest — every request answered,
# every answer a typed success, no overload/deadline/draining/error
# classes at all. Uses a fixed localhost port; override WIRE_ADDR if it
# clashes.
WIRE_ADDR ?= 127.0.0.1:18090
wire-smoke:
	@$(GO) build -o /tmp/slserve-wire-smoke ./cmd/slserve
	@/tmp/slserve-wire-smoke -n 6 -random 4 -listen 127.0.0.1:18091 -wire-addr $(WIRE_ADDR) & \
	pid=$$!; trap 'kill $$pid 2>/dev/null' EXIT; \
	sleep 1; \
	echo "# wire-smoke: plain seeded run" && \
	$(GO) run ./cmd/slload -wire $(WIRE_ADDR) -n 6 -seed 7 \
		-workers 4 -duration 1s -warmup 100ms -mix route:8,batch:1,routeall:1 \
		-deadline 2s -min-ok 500 -only-ok -o /dev/null && \
	echo "# wire-smoke: coalesced run with scenario churn" && \
	$(GO) run ./cmd/slload -wire $(WIRE_ADDR) -n 6 -seed 7 -coalesce 4 \
		-workers 4 -duration 1s -warmup 100ms -scenario flap \
		-deadline 2s -min-ok 500 -only-ok -o /dev/null

# Syndrome-diagnosis smoke: close the test→diagnose→journal→route loop
# end to end. First a seeded scenario run where the churn schedule is
# produced by PMC syndrome diagnosis instead of declared faults
# (-diagnosed), gated only-OK — within the diagnosability bound the
# diagnosed schedule must be indistinguishable from the truth. Then the
# decoder differentials and the journal/replay suites.
diagnose-smoke:
	@for adv in invert random; do \
		echo "# diagnosed scenario rolling, adversary $$adv"; \
		$(GO) run ./cmd/slload -n 6 -workers 4 -duration 1s -warmup 100ms \
			-scenario rolling -diagnosed -adversary $$adv -seed 11 \
			-deadline 1s -min-ok 200 -only-ok -o /dev/null \
			|| exit 1; \
	done
	$(GO) test -run 'TestDiagnose|TestDecode|TestLocal|TestSyndrome|TestReplay|TestReconciler|TestDedup|TestScheduleReplayDiagnosed' ./...

# Million-node scale gate: cold GS over the full Q20 cube plus one
# incremental repair, under a wall-clock budget (see
# internal/core/scale_test.go). Exercises the flat SoA core at the
# size the refactor targets.
scale-smoke:
	SCALE_SMOKE=1 $(GO) test -run '^TestScaleSmokeQ20$$' -timeout 150s -v ./internal/core

# Whole-repo statement coverage, gated by the ratcheting floor in
# .github/coverage-floor.txt (raise it when new tests push it up; CI
# fails if total coverage drops below it).
cover:
	$(GO) test -coverprofile=cover.out -coverpkg=./... ./...
	@total=$$($(GO) tool cover -func=cover.out | awk '/^total:/ { sub(/%/, "", $$3); print $$3 }'); \
	floor=$$(cat .github/coverage-floor.txt); \
	awk -v t="$$total" -v f="$$floor" 'BEGIN { \
		if (t + 0 < f + 0) { printf "coverage %.1f%% is below the floor %.1f%%\n", t, f; exit 1 } \
		printf "coverage %.1f%% (floor %.1f%%)\n", t, f }'

# Static analysis; skipped with a notice when staticcheck is not on
# PATH (the container has no network to install it — CI installs it).
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it)"; \
	fi

ci: fmt vet build race bench-smoke staticcheck
