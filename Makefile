GO ?= go

.PHONY: all build vet test race bench-smoke bench-json ci

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration of every benchmark: catches bit-rot in the measurement
# code without paying for real measurements.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Regenerate BENCH_1.json (the instrumentation-overhead evidence).
bench-json:
	EMIT_BENCH_JSON=1 $(GO) test -run TestEmitBenchJSON .

ci: vet build race bench-smoke
