package safecube

import (
	"context"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/serve"
)

// Serving facade: a Server wraps the concurrent route-serving engine
// (internal/serve) behind the package's public types. Readers —
// Unicast, BatchUnicast, RouteAll, Feasibility — are lock-free; fault
// churn is applied through a bounded queue by a single background
// applier that repairs the levels incrementally and publishes each new
// assignment as an immutable snapshot with one atomic pointer swap.
// See DESIGN.md §9 for why routing against a momentarily stale
// snapshot is still exactly the paper's algorithm for that snapshot's
// fault set.

// ServeOptions configures a Server. The zero value is ready to use.
type ServeOptions struct {
	// QueueDepth bounds the churn apply queue (<= 0 means 64).
	QueueDepth int
	// Workers sizes the batch worker pool (<= 0 means GOMAXPROCS).
	Workers int
	// Rate enables token-bucket admission control on the context-aware
	// readers: at most Rate unicasts per second are admitted
	// (UnicastCtx costs 1, BatchUnicastCtx one per pair, RouteAllCtx
	// one per destination); the excess is shed promptly with
	// ErrServerOverload. <= 0 disables shedding. The context-free
	// readers are never shed.
	Rate float64
	// Burst is the admission bucket depth in unicasts (< 1 means 1).
	Burst int
	// Registry receives the serving metrics (nil disables).
	Registry *Registry
	// Flight supplies a pre-sized flight recorder (see NewFlightRecorder).
	// When nil the Server builds a default one — the recorder is on by
	// default; set NoFlight to opt out.
	Flight *FlightRecorder
	// NoFlight serves without a flight recorder (ignored when Flight is
	// non-nil).
	NoFlight bool
}

// Server is a concurrent route-serving engine over a frozen copy of a
// facade's fault set. All methods are safe for concurrent use; routing
// reads never block, even while churn is being applied. Close it when
// done.
//
// The Server clones the facade's fault state at creation: later
// mutations of the originating Cube/Generalized do not reach the
// Server, and Server churn does not reach the facade. Feed churn to
// the Server through its own FailNode/RecoverNode/FailLink/RecoverLink.
type Server struct {
	svc *serve.Service
}

func serveFrom(set *faults.Set, opts ServeOptions) (*Server, error) {
	svc, err := serve.New(set, serve.Options{
		QueueDepth: opts.QueueDepth,
		Workers:    opts.Workers,
		Rate:       opts.Rate,
		Burst:      opts.Burst,
		Registry:   opts.Registry,
		Flight:     opts.Flight,
		NoFlight:   opts.NoFlight,
	})
	if err != nil {
		return nil, err
	}
	return &Server{svc: svc}, nil
}

// Serve starts a route-serving engine over a copy of the cube's
// current fault set.
func (c *Cube) Serve(opts ServeOptions) (*Server, error) {
	return serveFrom(c.set, opts)
}

// Serve starts a route-serving engine over a copy of the generalized
// hypercube's current fault set. NodeID and GNodeID are the same type,
// so the Server API is shared between both facades.
func (g *Generalized) Serve(opts ServeOptions) (*Server, error) {
	return serveFrom(g.set, opts)
}

// Generation returns the fault-set generation of the currently
// published snapshot. It advances monotonically as churn is applied.
func (s *Server) Generation() uint64 { return s.svc.Generation() }

// QueueDepth returns the number of churn events waiting to be applied.
func (s *Server) QueueDepth() int { return s.svc.QueueDepth() }

// Unicast routes a message from src to dst against the current
// snapshot. It never blocks on churn.
func (s *Server) Unicast(src, dst NodeID) *Route {
	return routeOf(s.svc.Route(src, dst))
}

// UnicastCtx is Unicast with production semantics: it honors ctx
// (returning ctx.Err() promptly once the deadline passes or the caller
// cancels), is subject to admission control (ErrServerOverload beyond
// ServeOptions.Rate), and refuses with ErrServerDraining once Shutdown
// has begun.
func (s *Server) UnicastCtx(ctx context.Context, src, dst NodeID) (*Route, error) {
	r, err := s.svc.RouteCtx(ctx, src, dst)
	if err != nil {
		return nil, err
	}
	return routeOf(r), nil
}

// Feasibility evaluates the source-side admission test against the
// current snapshot without moving a message.
func (s *Server) Feasibility(src, dst NodeID) (Condition, Outcome) {
	return s.svc.Feasibility(src, dst)
}

// Level returns a's safety level in the current snapshot, as observed
// by its neighbors (0 for faulty nodes and for nodes with an adjacent
// faulty link).
func (s *Server) Level(a NodeID) int { return s.svc.Current().Level(a) }

// NodeFaulty reports whether the currently published snapshot marks a
// faulty. This backs the per-node health probe (slserve's /probe): a
// downstream fault monitor polls it to learn this server's view of the
// node, then declares the fault into its own engine.
func (s *Server) NodeFaulty(a NodeID) bool {
	return s.svc.Current().Assignment().Faults().NodeFaulty(a)
}

// CurrentFaults returns the published snapshot's immutable fault view
// — the same consistent state Unicast routes on. Diagnosis front-ends
// (internal/diagnose) collect a whole PMC syndrome from one call so
// every neighbor test in a sweep observes one generation; slserve's
// /syndrome endpoint is built on it.
func (s *Server) CurrentFaults() *faults.Set { return s.svc.CurrentFaults() }

// BatchUnicast answers every pair against ONE snapshot — the results
// are mutually consistent even while churn lands mid-batch — and
// returns the routes in request order. Requests fan out over the
// Server's worker pool; results are element-wise identical to routing
// the pairs one by one.
func (s *Server) BatchUnicast(pairs []TrafficPair) []*Route {
	reqs := make([]serve.Request, len(pairs))
	for i, p := range pairs {
		reqs[i] = serve.Request{Src: p.Src, Dst: p.Dst}
	}
	rs := s.svc.BatchUnicast(reqs)
	out := make([]*Route, len(rs))
	for i, r := range rs {
		out[i] = routeOf(r)
	}
	return out
}

// BatchUnicastCtx is BatchUnicast with deadline, admission and drain
// handling (see UnicastCtx). Admission costs one token per pair; a
// canceled batch returns ctx.Err() rather than a truncated result set.
func (s *Server) BatchUnicastCtx(ctx context.Context, pairs []TrafficPair) ([]*Route, error) {
	reqs := make([]serve.Request, len(pairs))
	for i, p := range pairs {
		reqs[i] = serve.Request{Src: p.Src, Dst: p.Dst}
	}
	rs, err := s.svc.BatchUnicastCtx(ctx, reqs)
	if err != nil {
		return nil, err
	}
	out := make([]*Route, len(rs))
	for i, r := range rs {
		out[i] = routeOf(r)
	}
	return out, nil
}

// RouteAll routes from src to every other node against one snapshot.
// The result is indexed by destination NodeID; the slot for src is nil.
func (s *Server) RouteAll(src NodeID) []*Route {
	rs := s.svc.RouteAll(src)
	out := make([]*Route, len(rs))
	for i, r := range rs {
		if r != nil {
			out[i] = routeOf(r)
		}
	}
	return out
}

// RouteAllCtx is RouteAll with deadline, admission and drain handling
// (see UnicastCtx). Admission costs one token per destination.
func (s *Server) RouteAllCtx(ctx context.Context, src NodeID) ([]*Route, error) {
	rs, err := s.svc.RouteAllCtx(ctx, src)
	if err != nil {
		return nil, err
	}
	out := make([]*Route, len(rs))
	for i, r := range rs {
		if r != nil {
			out[i] = routeOf(r)
		}
	}
	return out, nil
}

// Inflight returns the number of context-aware requests currently in
// flight (the quantity Shutdown drains to zero).
func (s *Server) Inflight() int64 { return s.svc.Inflight() }

// Flight returns the Server's flight recorder (nil when the Server was
// started with NoFlight). Snapshot it for the recent request records,
// Incidents for the promoted anomalies.
func (s *Server) Flight() *FlightRecorder { return s.svc.Flight() }

// FailNode enqueues a node fault. The snapshot updates asynchronously;
// use Flush to wait for it.
func (s *Server) FailNode(a NodeID) error { return s.svc.FailNode(a) }

// RecoverNode enqueues a node recovery (also dropping the node's
// incident link faults, like the direct facade call does).
func (s *Server) RecoverNode(a NodeID) error { return s.svc.RecoverNode(a) }

// FailLink enqueues a link fault between neighbors a and b.
func (s *Server) FailLink(a, b NodeID) error { return s.svc.FailLink(a, b) }

// RecoverLink enqueues a link recovery.
func (s *Server) RecoverLink(a, b NodeID) error { return s.svc.RecoverLink(a, b) }

// Flush blocks until every churn event enqueued before the call has
// been applied and published.
func (s *Server) Flush() { s.svc.Flush() }

// Close stops the applier and releases the Server. Pending churn is
// drained first. Close is idempotent; methods called after Close see
// ErrServerClosed from mutators and the last published snapshot from
// readers. Close does not wait for in-flight context-aware requests —
// use Shutdown for an ordered drain.
func (s *Server) Close() { s.svc.Close() }

// Shutdown drains the Server gracefully: new context-aware requests
// are refused with ErrServerDraining, every request already admitted
// completes against its pinned snapshot, churn accepted before the
// drain is flushed into a final published snapshot, and only then the
// applier stops. If ctx expires first, the Server hard-closes and
// Shutdown returns ctx.Err(). Context-free readers keep serving the
// final snapshot either way.
func (s *Server) Shutdown(ctx context.Context) error { return s.svc.Shutdown(ctx) }

// Serving errors, re-exported from the engine.
var (
	// ErrServerClosed is returned by mutators after Close.
	ErrServerClosed = serve.ErrClosed
	// ErrServerBacklog is returned when the churn queue is full and the
	// caller asked not to block — writer-side backpressure.
	ErrServerBacklog = serve.ErrBacklog
	// ErrServerOverload is returned by the context-aware readers when
	// admission control sheds the request — reader-side load shedding,
	// deliberately distinct from ErrServerBacklog.
	ErrServerOverload = serve.ErrOverload
	// ErrServerDraining is returned by the context-aware readers once
	// Shutdown (or Close) has begun.
	ErrServerDraining = serve.ErrDraining
)

func routeOf(r *core.Route) *Route {
	if r == nil {
		return nil
	}
	return &Route{
		Source:    r.Source,
		Dest:      r.Dest,
		Hamming:   r.Hamming,
		Outcome:   r.Outcome,
		Condition: r.Condition,
		Path:      append([]NodeID(nil), r.Path...),
		Err:       r.Err,
		RequestID: r.FlightID,
	}
}
