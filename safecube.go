package safecube

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/topo"
)

// NodeID identifies a hypercube node by its binary address, in 0..2^n-1.
type NodeID = topo.NodeID

// Outcome classifies a unicast attempt.
type Outcome = core.Outcome

// Unicast outcome classes (re-exported from the routing core).
const (
	// Optimal: delivered along a Hamming-distance path.
	Optimal = core.Optimal
	// Suboptimal: delivered along a path of length H+2.
	Suboptimal = core.Suboptimal
	// Failure: aborted at the source (no admission condition held).
	Failure = core.Failure
)

// Condition identifies which admission test held at the source.
type Condition = core.Condition

// Admission conditions (re-exported from the routing core).
const (
	CondNone = core.CondNone
	CondC1   = core.CondC1
	CondC2   = core.CondC2
	CondC3   = core.CondC3
)

// MaxDim is the largest supported cube dimension.
const MaxDim = topo.MaxDim

// Cube is a faulty hypercube with safety-level routing. It is not safe
// for concurrent mutation; compute-and-route from one goroutine, or use
// Distributed for a concurrent execution model.
type Cube struct {
	cube *topo.Cube
	set  *faults.Set
	// as is the cached level assignment; it is valid while asGen matches
	// the fault set's mutation generation, so no mutator has to flag
	// staleness by hand and repeated unicasts between fault events reuse
	// one GS run.
	as    *core.Assignment
	asGen uint64

	// Observability (nil when not instrumented; see Instrument).
	reg          *obs.Registry
	routeObs     *obs.RouteObserver
	cacheHits    *obs.Counter
	cacheMisses  *obs.Counter
	cacheRepairs *obs.Counter
}

// New returns an n-dimensional fault-free cube. Dimension must be in
// [1, MaxDim].
func New(n int) (*Cube, error) {
	c, err := topo.NewCube(n)
	if err != nil {
		return nil, err
	}
	return &Cube{cube: c, set: faults.NewSet(c)}, nil
}

// MustNew is New for compile-time-constant dimensions; it panics on an
// invalid dimension.
func MustNew(n int) *Cube {
	c, err := New(n)
	if err != nil {
		panic(err)
	}
	return c
}

// Dim returns the cube dimension n.
func (c *Cube) Dim() int { return c.cube.Dim() }

// Nodes returns the number of nodes, 2^n.
func (c *Cube) Nodes() int { return c.cube.Nodes() }

// Parse converts an n-bit binary address string ("0110") to a NodeID.
func (c *Cube) Parse(addr string) (NodeID, error) { return c.cube.Parse(addr) }

// MustParse is Parse that panics on malformed input; intended for
// literals in examples and tests.
func (c *Cube) MustParse(addr string) NodeID { return c.cube.MustParse(addr) }

// Format renders a node as its n-bit binary address.
func (c *Cube) Format(a NodeID) string { return c.cube.Format(a) }

// FailNode marks a node fail-stop faulty.
func (c *Cube) FailNode(a NodeID) error {
	return c.set.FailNode(a)
}

// FailNodes marks several nodes faulty.
func (c *Cube) FailNodes(nodes ...NodeID) error {
	return c.set.FailNodes(nodes...)
}

// FailNamed marks the nodes with the given binary addresses faulty.
func (c *Cube) FailNamed(addrs ...string) error {
	for _, s := range addrs {
		a, err := c.Parse(s)
		if err != nil {
			return err
		}
		if err := c.FailNode(a); err != nil {
			return err
		}
	}
	return nil
}

// RecoverNode marks a previously-failed node healthy again.
func (c *Cube) RecoverNode(a NodeID) error {
	return c.set.RecoverNode(a)
}

// FailLink marks the undirected link between two adjacent nodes faulty
// (Section 4.1). Safety levels switch to the EGS computation: both end
// nodes expose level 0 but route with their own level.
func (c *Cube) FailLink(a, b NodeID) error {
	return c.set.FailLink(a, b)
}

// InjectRandomFaults fails exactly count additional distinct nodes,
// chosen uniformly with the deterministic generator seeded by seed.
func (c *Cube) InjectRandomFaults(seed uint64, count int) error {
	return faults.InjectUniform(c.set, stats.NewRNG(seed), count)
}

// NodeFaulty reports whether a node is faulty.
func (c *Cube) NodeFaulty(a NodeID) bool { return c.set.NodeFaulty(a) }

// FaultyNodes returns the faulty nodes in ascending order.
func (c *Cube) FaultyNodes() []NodeID { return c.set.FaultyNodes() }

// NodeFaults returns the number of faulty nodes.
func (c *Cube) NodeFaults() int { return c.set.NodeFaults() }

// Connected reports whether the surviving (nonfaulty) subgraph is one
// component. A false result means the cube is a "disconnected
// hypercube" in the paper's sense; safety-level routing keeps working
// within components and detects cross-partition unicasts at the source.
func (c *Cube) Connected() bool { return faults.Connected(c.set) }

// Hamming returns the Hamming distance between two node addresses.
func Hamming(a, b NodeID) int { return topo.Hamming(a, b) }

// Levels is the computed safety-level assignment of a cube.
type Levels struct {
	as *core.Assignment
}

// ComputeLevels runs GS (or EGS when link faults are present) to the
// fixpoint and returns the assignment. The result is cached keyed on the
// fault set's mutation generation: any fault injected or recovered —
// through the Cube, a Distributed engine, or the set itself — invalidates
// it, and nothing else does. A stale cache entry is patched rather than
// discarded when the fault set can replay the intervening delta journal:
// core.RepairLevels reconverges from the last stable assignment, touching
// only the dirty region (same fixpoint by Theorem 1, typically a fraction
// of the cold work). On an instrumented cube every call counts a cache
// hit or miss — a repair counts as a miss plus a repairs counter — and
// every recomputation records a GSTrace (Kind "sequential" or "repair").
func (c *Cube) ComputeLevels() *Levels {
	gen := c.set.Generation()
	if c.as != nil && c.asGen == gen {
		c.cacheHits.Inc()
		return &Levels{as: c.as}
	}
	c.cacheMisses.Inc()
	repaired := false
	if c.as != nil {
		if delta, ok := c.set.Since(c.asGen); ok {
			if as, ok := core.RepairLevels(c.as, c.set, delta, core.Options{}); ok {
				c.as, repaired = as, true
				c.cacheRepairs.Inc()
			}
		}
	}
	if !repaired {
		c.as = core.Compute(c.set, core.Options{})
	}
	c.asGen = gen
	if c.reg != nil {
		c.recordGS()
	}
	return &Levels{as: c.as}
}

// recordGS publishes the cost of the sequential GS run or incremental
// repair that just ended.
func (c *Cube) recordGS() {
	deltas := c.as.Deltas()
	changes := 0
	for _, d := range deltas {
		changes += d
	}
	c.reg.Counter(obs.MetricGSRunsTotal).Inc()
	c.reg.Gauge(obs.MetricGSLastRounds).Set(int64(c.as.Rounds()))
	c.reg.Histogram(obs.MetricGSRoundsHist).Observe(int64(c.as.Rounds()))
	c.reg.Counter(obs.MetricGSLevelChangesTotal).Add(int64(changes))
	tr := &obs.GSTrace{
		Kind:       "sequential",
		Dim:        c.Dim(),
		NodeFaults: c.set.NodeFaults(),
		LinkFaults: c.set.LinkFaults(),
		Rounds:     c.as.Rounds(),
		Deltas:     deltas,
		TableBytes: c.as.TableBytes(),
	}
	if c.as.Repaired() {
		tr.Kind = "repair"
		tr.DirtyNodes = c.as.DirtyNodes()
		tr.Evals = c.as.Evals()
		c.reg.Gauge(obs.MetricGSRepairRounds).Set(int64(c.as.Rounds()))
		c.reg.Counter(obs.MetricGSRepairDirtyNodes).Add(int64(c.as.DirtyNodes()))
		c.reg.Counter(obs.MetricGSRepairEvals).Add(int64(c.as.Evals()))
	}
	c.reg.RecordGS(tr)
}

// Level returns node a's safety level as observed by its neighbors
// (0 for faulty nodes and for nodes with an adjacent faulty link).
func (l *Levels) Level(a NodeID) int { return l.as.Level(a) }

// OwnLevel returns node a's own view of its level; it differs from
// Level only for nodes with adjacent faulty links.
func (l *Levels) OwnLevel(a NodeID) int { return l.as.OwnLevel(a) }

// Rounds returns how many synchronous information-exchange rounds the
// levels needed to stabilize (at most n-1; 0 for a fault-free cube).
func (l *Levels) Rounds() int { return l.as.Rounds() }

// Safe reports whether a has the maximum level n.
func (l *Levels) Safe(a NodeID) bool { return l.as.Safe(a) }

// SafeSet returns all safe nodes in ascending order.
func (l *Levels) SafeSet() []NodeID { return l.as.SafeSet() }

// Verify checks the assignment against Definition 1 at every node; it
// returns nil for every assignment produced by ComputeLevels.
func (l *Levels) Verify() error { return l.as.Verify() }

// Route is the result of a unicast attempt.
type Route struct {
	// Source and Dest are the unicast endpoints.
	Source, Dest NodeID
	// Hamming is the distance H(Source, Dest).
	Hamming int
	// Outcome classifies the attempt; on Failure the message never left
	// the source.
	Outcome Outcome
	// Condition is the admission test that held (C1, C2, C3 or none).
	Condition Condition
	// Path is the node sequence traveled, starting at Source; empty on
	// failure.
	Path []NodeID
	// Err carries endpoint validation problems (faulty source, node
	// outside the cube). A clean source-side abort has Err == nil.
	Err error
	// RequestID is the flight-recorder ID of the serving request the
	// route answered (nonzero only for routes served by a Server's
	// context-aware readers); it links the route to /debug/flight
	// records, incident traces, and histogram exemplars.
	RequestID uint64
}

// Hops returns the number of links traveled (0 on failure).
func (r *Route) Hops() int {
	if len(r.Path) == 0 {
		return 0
	}
	return len(r.Path) - 1
}

// PathString renders the path as "0001 -> 0000 -> 1000" given the cube.
func (r *Route) PathString(c *Cube) string {
	return topo.Path(r.Path).FormatWith(c.cube)
}

// Unicast routes a message from s to d using safety levels, computing
// them first if needed. The source must be nonfaulty; the destination
// may be faulty only at distance 1 (a node can always reach its own
// neighbors).
func (c *Cube) Unicast(s, d NodeID) *Route {
	lv := c.ComputeLevels()
	r := core.NewRouter(lv.as, nil).Observe(c.routeObs).Unicast(s, d)
	return &Route{
		Source:    r.Source,
		Dest:      r.Dest,
		Hamming:   r.Hamming,
		Outcome:   r.Outcome,
		Condition: r.Condition,
		Path:      append([]NodeID(nil), r.Path...),
		Err:       r.Err,
	}
}

// Feasibility evaluates the source-side admission test for a unicast
// from s to d without moving a message: which condition (if any) holds
// and the outcome class it implies.
func (c *Cube) Feasibility(s, d NodeID) (Condition, Outcome) {
	lv := c.ComputeLevels()
	return core.NewRouter(lv.as, nil).Feasibility(s, d)
}

// OptimalPathExists reports whether a Hamming-distance path from s to d
// survives the current faults — the ground truth behind Theorem 2, via
// exact dynamic programming (exponential only in H(s, d)).
func (c *Cube) OptimalPathExists(s, d NodeID) bool {
	return faults.HasOptimalPath(c.set, s, d)
}

// String summarizes the cube state.
func (c *Cube) String() string {
	return fmt.Sprintf("Q%d with %d node faults, %d link faults",
		c.cube.Dim(), c.set.NodeFaults(), c.set.LinkFaults())
}

// internalSet exposes the fault set to the sibling files of this
// package (distributed.go, generalized.go).
func (c *Cube) internalSet() *faults.Set { return c.set }
