package main

import (
	"bytes"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (string, int) {
	t.Helper()
	var buf bytes.Buffer
	code, err := run(args, &buf)
	if err != nil && code != 2 {
		t.Fatalf("unexpected error with code %d: %v", code, err)
	}
	return buf.String(), code
}

func TestPaperExampleCLI(t *testing.T) {
	out, code := runCLI(t,
		"-n", "4", "-faults", "0011,0100,0110,1001", "-from", "1110", "-to", "0001", "-levels")
	if code != 0 {
		t.Fatalf("exit code %d:\n%s", code, out)
	}
	for _, want := range []string{
		"stabilized in 2 rounds",
		"S(0101) = 2",
		"condition C1, outcome optimal",
		"1110 -> 1111 -> 1101 -> 0101 -> 0001",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestLinkFaultCLI(t *testing.T) {
	out, code := runCLI(t,
		"-n", "4", "-faults", "0000,0100,1100,1110", "-links", "1000-1001",
		"-from", "1101", "-to", "1000")
	if code != 0 {
		t.Fatalf("exit code %d:\n%s", code, out)
	}
	if !strings.Contains(out, "1101 -> 1111 -> 1011 -> 1010 -> 1000") {
		t.Errorf("Fig. 4 path missing:\n%s", out)
	}
	if !strings.Contains(out, "outcome suboptimal") {
		t.Errorf("outcome missing:\n%s", out)
	}
}

func TestAbortExitCode(t *testing.T) {
	// Fig. 3 cross-partition request: clean abort, exit 1.
	out, code := runCLI(t,
		"-n", "4", "-faults", "0110,1010,1100,1111", "-from", "0111", "-to", "1110")
	if code != 1 {
		t.Fatalf("exit code %d, want 1:\n%s", code, out)
	}
	if !strings.Contains(out, "aborted at the source") {
		t.Errorf("abort message missing:\n%s", out)
	}
	if !strings.Contains(out, "connected: false") {
		t.Errorf("connectivity note missing:\n%s", out)
	}
}

func TestGeneralizedCLI(t *testing.T) {
	out, code := runCLI(t,
		"-radix", "2x3x2", "-faults", "011,100,111,121", "-levels", "-from", "010", "-to", "101")
	if code != 0 {
		t.Fatalf("exit code %d:\n%s", code, out)
	}
	for _, want := range []string{
		"GH(2x3x2), 12 nodes",
		"S(110) = 1",
		"010 -> 000 -> 001 -> 101",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestGHFlagsCLI checks that the binary-path flags work with -radix:
// link faults trigger the EGS own-level annotation, -trace prints the
// decision trace, and -random injects deterministically.
func TestGHFlagsCLI(t *testing.T) {
	out, code := runCLI(t,
		"-radix", "3x3", "-links", "00-01", "-levels", "-trace", "-from", "00", "-to", "01")
	if code != 0 {
		t.Fatalf("exit code %d:\n%s", code, out)
	}
	for _, want := range []string{
		"GH(3x3), 9 nodes",
		"S(00) = 0 own=",  // faulty-link end: public 0, own level positive
		"admit",           // trace header line
		"outcome subopt",  // the dead-link detour costs two extra hops
		"path (3 hops): ", // H+2
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}

	out, code = runCLI(t, "-radix", "2x3x2", "-random", "3", "-seed", "9")
	if code != 0 {
		t.Fatalf("exit code %d:\n%s", code, out)
	}
	if !strings.Contains(out, "GH(2x3x2), 12 nodes") {
		t.Errorf("header missing:\n%s", out)
	}
}

func TestUsageErrors(t *testing.T) {
	cases := [][]string{
		{"-n", "0"},
		{"-n", "4", "-faults", "xyz"},
		{"-n", "4", "-links", "0000"},
		{"-n", "4", "-links", "0000-0011"},
		{"-n", "4", "-from", "xx", "-to", "0001"},
		{"-n", "4", "-from", "0000", "-to", "xx"},
		{"-radix", "2xq"},
		{"-radix", "1x2"},
		{"-radix", "2x2", "-faults", "99"},
		{"-n", "4", "-random", "99"},
		{"-badflag"},
	}
	for _, args := range cases {
		var buf bytes.Buffer
		code, err := run(args, &buf)
		if code != 2 || err == nil {
			t.Errorf("args %v: code %d err %v, want usage failure", args, code, err)
		}
	}
}

func TestRandomInjectionCLI(t *testing.T) {
	out, code := runCLI(t, "-n", "6", "-random", "5", "-seed", "3", "-from", "000000", "-to", "111111")
	if code > 1 {
		t.Fatalf("exit code %d:\n%s", code, out)
	}
	if !strings.Contains(out, "5 node faults") {
		t.Errorf("fault count missing:\n%s", out)
	}
}

func TestSplitList(t *testing.T) {
	got := splitList(" a, b ,, c ")
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Errorf("splitList = %v", got)
	}
	if splitList("") != nil {
		t.Error("empty list should be nil")
	}
}
