// Command slroute performs one safety-level unicast in a faulty
// hypercube and prints the admission decision and the path.
//
// Usage:
//
//	slroute -n 4 -faults 0011,0100,0110,1001 -from 1110 -to 0001
//	slroute -n 4 -faults 0000,0100,1100,1110 -links 1000-1001 -from 1101 -to 1000
//	slroute -n 7 -seed 7 -random 6 -from 0000000 -to 1111111 -levels
//	slroute -radix 2x3x2 -faults 011,100,111,121 -levels -from 010 -to 101
//	slroute -radix 3x3 -links 00-01 -from 00 -to 01 -trace
//
// Addresses are n-bit binary strings (or mixed-radix digit strings with
// -radix), matching the paper's notation. Exit status: 0 delivered (or
// no route requested), 1 unicast aborted, 2 usage error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	safecube "repro"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "slroute:", err)
		if code == 0 {
			code = 2
		}
	}
	os.Exit(code)
}

// run executes one invocation; it returns the process exit code plus
// any usage/validation error. Split from main so the CLI is testable.
func run(args []string, out io.Writer) (int, error) {
	fs := flag.NewFlagSet("slroute", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	n := fs.Int("n", 4, "cube dimension")
	radix := fs.String("radix", "", "generalized hypercube shape, e.g. 2x3x2 (dimension n-1 first, like the paper); overrides -n")
	faultList := fs.String("faults", "", "comma-separated faulty node addresses")
	linkList := fs.String("links", "", "comma-separated faulty links, each as addr-addr")
	random := fs.Int("random", 0, "inject this many uniform random faults")
	seed := fs.Uint64("seed", 1, "seed for -random")
	from := fs.String("from", "", "source address (binary)")
	to := fs.String("to", "", "destination address (binary)")
	levels := fs.Bool("levels", false, "print the full safety-level table")
	trace := fs.Bool("trace", false, "print the per-hop decision trace of the unicast")
	if err := fs.Parse(args); err != nil {
		return 2, err
	}

	if *radix != "" {
		return runGeneralized(out, ghOptions{
			shape:     *radix,
			faultList: *faultList,
			linkList:  *linkList,
			random:    *random,
			seed:      *seed,
			from:      *from,
			to:        *to,
			levels:    *levels,
			trace:     *trace,
		})
	}

	c, err := safecube.New(*n)
	if err != nil {
		return 2, err
	}
	if *faultList != "" {
		if err := c.FailNamed(splitList(*faultList)...); err != nil {
			return 2, err
		}
	}
	for _, l := range splitList(*linkList) {
		ends := strings.SplitN(l, "-", 2)
		if len(ends) != 2 {
			return 2, fmt.Errorf("bad link %q, want addr-addr", l)
		}
		a, err := c.Parse(ends[0])
		if err != nil {
			return 2, err
		}
		b, err := c.Parse(ends[1])
		if err != nil {
			return 2, err
		}
		if err := c.FailLink(a, b); err != nil {
			return 2, err
		}
	}
	if *random > 0 {
		if err := c.InjectRandomFaults(*seed, *random); err != nil {
			return 2, err
		}
	}

	lv := c.ComputeLevels()
	fmt.Fprintf(out, "%s; levels stabilized in %d rounds; connected: %v\n",
		c, lv.Rounds(), c.Connected())
	if *levels {
		for a := 0; a < c.Nodes(); a++ {
			id := safecube.NodeID(a)
			mark := ""
			if c.NodeFaulty(id) {
				mark = " (faulty)"
			} else if lv.Safe(id) {
				mark = " (safe)"
			}
			own := ""
			if lv.OwnLevel(id) != lv.Level(id) {
				own = fmt.Sprintf(" own=%d", lv.OwnLevel(id))
			}
			fmt.Fprintf(out, "  S(%s) = %d%s%s\n", c.Format(id), lv.Level(id), own, mark)
		}
	}

	if *from == "" || *to == "" {
		return 0, nil
	}
	src, err := c.Parse(*from)
	if err != nil {
		return 2, err
	}
	dst, err := c.Parse(*to)
	if err != nil {
		return 2, err
	}

	var r *safecube.Route
	if *trace {
		var tr *safecube.RouteTrace
		r, tr = c.UnicastTraced(src, dst)
		fmt.Fprint(out, tr.Format(func(a int) string { return c.Format(safecube.NodeID(a)) }))
	} else {
		r = c.Unicast(src, dst)
	}
	fmt.Fprintf(out, "unicast %s -> %s: H = %d, condition %s, outcome %s\n",
		*from, *to, r.Hamming, r.Condition, r.Outcome)
	switch {
	case r.Err != nil:
		fmt.Fprintf(out, "  error: %v\n", r.Err)
		return 1, nil
	case r.Outcome == safecube.Failure:
		fmt.Fprintln(out, "  aborted at the source: no admission condition held")
		fmt.Fprintln(out, "  (cause: too many faults in the neighborhood, or a network partition)")
		return 1, nil
	default:
		fmt.Fprintf(out, "  path (%d hops): %s\n", r.Hops(), r.PathString(c))
		return 0, nil
	}
}

// ghOptions carries the flag set into the generalized path; every
// binary-cube flag works with -radix too.
type ghOptions struct {
	shape, faultList, linkList string
	random                     int
	seed                       uint64
	from, to                   string
	levels, trace              bool
}

// runGeneralized handles the Section 4.2 topology: parse the shape,
// apply node/link/random faults, and route — with the same -levels and
// -trace features as the binary path (the generic core serves both).
func runGeneralized(out io.Writer, o ghOptions) (int, error) {
	radix, err := safecube.ParseRadix(o.shape)
	if err != nil {
		return 2, err
	}
	g, err := safecube.NewGeneralized(radix...)
	if err != nil {
		return 2, err
	}
	if o.faultList != "" {
		if err := g.FailNamed(splitList(o.faultList)...); err != nil {
			return 2, err
		}
	}
	for _, l := range splitList(o.linkList) {
		ends := strings.SplitN(l, "-", 2)
		if len(ends) != 2 {
			return 2, fmt.Errorf("bad link %q, want addr-addr", l)
		}
		a, err := g.Parse(ends[0])
		if err != nil {
			return 2, err
		}
		b, err := g.Parse(ends[1])
		if err != nil {
			return 2, err
		}
		if err := g.FailLink(a, b); err != nil {
			return 2, err
		}
	}
	if o.random > 0 {
		if err := g.InjectRandomFaults(o.seed, o.random); err != nil {
			return 2, err
		}
	}
	lv := g.ComputeLevels()
	fmt.Fprintf(out, "GH(%s), %d nodes, levels stabilized in %d rounds, connected: %v\n",
		o.shape, g.Nodes(), lv.Rounds(), g.Connected())
	if o.levels {
		for a := 0; a < g.Nodes(); a++ {
			id := safecube.GNodeID(a)
			mark := ""
			if g.NodeFaulty(id) {
				mark = " (faulty)"
			} else if lv.Safe(id) {
				mark = " (safe)"
			}
			own := ""
			if lv.OwnLevel(id) != lv.Level(id) {
				own = fmt.Sprintf(" own=%d", lv.OwnLevel(id))
			}
			fmt.Fprintf(out, "  S(%s) = %d%s%s\n", g.Format(id), lv.Level(id), own, mark)
		}
	}
	if o.from == "" || o.to == "" {
		return 0, nil
	}
	src, err := g.Parse(o.from)
	if err != nil {
		return 2, err
	}
	dst, err := g.Parse(o.to)
	if err != nil {
		return 2, err
	}
	var r *safecube.GRoute
	if o.trace {
		var tr *safecube.RouteTrace
		r, tr = g.UnicastTraced(src, dst)
		fmt.Fprint(out, tr.Format(func(a int) string { return g.Format(safecube.GNodeID(a)) }))
	} else {
		r = g.Unicast(src, dst)
	}
	fmt.Fprintf(out, "unicast %s -> %s: distance %d, condition %s, outcome %s\n",
		o.from, o.to, r.Distance, r.Condition, r.Outcome)
	switch {
	case r.Err != nil:
		fmt.Fprintf(out, "  error: %v\n", r.Err)
		return 1, nil
	case r.Outcome == safecube.Failure:
		fmt.Fprintln(out, "  aborted at the source: no admission condition held")
		return 1, nil
	default:
		fmt.Fprintf(out, "  path (%d hops): %s\n", r.Hops(), r.PathString(g))
		return 0, nil
	}
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
