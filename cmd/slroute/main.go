// Command slroute performs one safety-level unicast in a faulty
// hypercube and prints the admission decision and the path.
//
// Usage:
//
//	slroute -n 4 -faults 0011,0100,0110,1001 -from 1110 -to 0001
//	slroute -n 4 -faults 0000,0100,1100,1110 -links 1000-1001 -from 1101 -to 1000
//	slroute -n 7 -seed 7 -random 6 -from 0000000 -to 1111111 -levels
//	slroute -radix 2x3x2 -faults 011,100,111,121 -from 010 -to 101
//
// Addresses are n-bit binary strings (or mixed-radix digit strings with
// -radix), matching the paper's notation. Exit status: 0 delivered (or
// no route requested), 1 unicast aborted, 2 usage error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	safecube "repro"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "slroute:", err)
		if code == 0 {
			code = 2
		}
	}
	os.Exit(code)
}

// run executes one invocation; it returns the process exit code plus
// any usage/validation error. Split from main so the CLI is testable.
func run(args []string, out io.Writer) (int, error) {
	fs := flag.NewFlagSet("slroute", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	n := fs.Int("n", 4, "cube dimension")
	radix := fs.String("radix", "", "generalized hypercube shape, e.g. 2x3x2 (dimension n-1 first, like the paper); overrides -n")
	faultList := fs.String("faults", "", "comma-separated faulty node addresses")
	linkList := fs.String("links", "", "comma-separated faulty links, each as addr-addr")
	random := fs.Int("random", 0, "inject this many uniform random faults")
	seed := fs.Uint64("seed", 1, "seed for -random")
	from := fs.String("from", "", "source address (binary)")
	to := fs.String("to", "", "destination address (binary)")
	levels := fs.Bool("levels", false, "print the full safety-level table")
	trace := fs.Bool("trace", false, "print the per-hop decision trace of the unicast")
	if err := fs.Parse(args); err != nil {
		return 2, err
	}

	if *radix != "" {
		return runGeneralized(out, *radix, *faultList, *from, *to)
	}

	c, err := safecube.New(*n)
	if err != nil {
		return 2, err
	}
	if *faultList != "" {
		if err := c.FailNamed(splitList(*faultList)...); err != nil {
			return 2, err
		}
	}
	for _, l := range splitList(*linkList) {
		ends := strings.SplitN(l, "-", 2)
		if len(ends) != 2 {
			return 2, fmt.Errorf("bad link %q, want addr-addr", l)
		}
		a, err := c.Parse(ends[0])
		if err != nil {
			return 2, err
		}
		b, err := c.Parse(ends[1])
		if err != nil {
			return 2, err
		}
		if err := c.FailLink(a, b); err != nil {
			return 2, err
		}
	}
	if *random > 0 {
		if err := c.InjectRandomFaults(*seed, *random); err != nil {
			return 2, err
		}
	}

	lv := c.ComputeLevels()
	fmt.Fprintf(out, "%s; levels stabilized in %d rounds; connected: %v\n",
		c, lv.Rounds(), c.Connected())
	if *levels {
		for a := 0; a < c.Nodes(); a++ {
			id := safecube.NodeID(a)
			mark := ""
			if c.NodeFaulty(id) {
				mark = " (faulty)"
			} else if lv.Safe(id) {
				mark = " (safe)"
			}
			own := ""
			if lv.OwnLevel(id) != lv.Level(id) {
				own = fmt.Sprintf(" own=%d", lv.OwnLevel(id))
			}
			fmt.Fprintf(out, "  S(%s) = %d%s%s\n", c.Format(id), lv.Level(id), own, mark)
		}
	}

	if *from == "" || *to == "" {
		return 0, nil
	}
	src, err := c.Parse(*from)
	if err != nil {
		return 2, err
	}
	dst, err := c.Parse(*to)
	if err != nil {
		return 2, err
	}

	var r *safecube.Route
	if *trace {
		var tr *safecube.RouteTrace
		r, tr = c.UnicastTraced(src, dst)
		fmt.Fprint(out, tr.Format(func(a int) string { return c.Format(safecube.NodeID(a)) }))
	} else {
		r = c.Unicast(src, dst)
	}
	fmt.Fprintf(out, "unicast %s -> %s: H = %d, condition %s, outcome %s\n",
		*from, *to, r.Hamming, r.Condition, r.Outcome)
	switch {
	case r.Err != nil:
		fmt.Fprintf(out, "  error: %v\n", r.Err)
		return 1, nil
	case r.Outcome == safecube.Failure:
		fmt.Fprintln(out, "  aborted at the source: no admission condition held")
		fmt.Fprintln(out, "  (cause: too many faults in the neighborhood, or a network partition)")
		return 1, nil
	default:
		fmt.Fprintf(out, "  path (%d hops): %s\n", r.Hops(), r.PathString(c))
		return 0, nil
	}
}

// runGeneralized handles the Section 4.2 topology: parse the shape,
// apply faults, and route.
func runGeneralized(out io.Writer, shape, faultList, from, to string) (int, error) {
	parts := strings.Split(shape, "x")
	radix := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return 2, fmt.Errorf("bad radix %q: %v", p, err)
		}
		// The flag lists m_{n-1} first (paper notation); the API takes
		// dimension 0 first.
		radix[len(parts)-1-i] = v
	}
	g, err := safecube.NewGeneralized(radix...)
	if err != nil {
		return 2, err
	}
	if faultList != "" {
		if err := g.FailNamed(splitList(faultList)...); err != nil {
			return 2, err
		}
	}
	lv := g.ComputeLevels()
	fmt.Fprintf(out, "GH(%s), %d nodes, levels stabilized in %d rounds, connected: %v\n",
		shape, g.Nodes(), lv.Rounds(), g.Connected())
	for a := 0; a < g.Nodes(); a++ {
		id := safecube.GNodeID(a)
		mark := ""
		if g.NodeFaulty(id) {
			mark = " (faulty)"
		} else if lv.Level(id) == g.Dim() {
			mark = " (safe)"
		}
		fmt.Fprintf(out, "  S(%s) = %d%s\n", g.Format(id), lv.Level(id), mark)
	}
	if from == "" || to == "" {
		return 0, nil
	}
	src, err := g.Parse(from)
	if err != nil {
		return 2, err
	}
	dst, err := g.Parse(to)
	if err != nil {
		return 2, err
	}
	r := g.Unicast(src, dst)
	fmt.Fprintf(out, "unicast %s -> %s: distance %d, condition %s, outcome %s\n",
		from, to, r.Distance, r.Condition, r.Outcome)
	switch {
	case r.Err != nil:
		fmt.Fprintf(out, "  error: %v\n", r.Err)
		return 1, nil
	case r.Outcome == safecube.Failure:
		fmt.Fprintln(out, "  aborted at the source: no admission condition held")
		return 1, nil
	default:
		fmt.Fprintf(out, "  path (%d hops): %s\n", r.Hops(), r.PathString(g))
		return 0, nil
	}
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
