// Command slreport regenerates the paper's figures and quantitative
// claims as text tables (see DESIGN.md's experiment index).
//
// Usage:
//
//	slreport [-experiment all|fig1|fig2|table1|safesets|rounds|fig3|
//	          guarantee|thm4|fig4|fig5|compare|distributed|ablate|
//	          broadcast|traffic|ghcube|churn|diagnose]
//	         [-seed N] [-trials N] [-csv]
//
// The default regenerates everything with the seeds and trial counts
// recorded in EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/expt"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes one invocation and returns the exit code; split from
// main so the CLI is testable.
func run(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("slreport", flag.ContinueOnError)
	fs.SetOutput(errOut)
	experiment := fs.String("experiment", "all", "experiment to run (all, fig1, fig2, table1, safesets, rounds, fig3, guarantee, thm4, fig4, fig5, compare, distributed, ablate, broadcast, traffic, ghcube, churn, diagnose)")
	seed := fs.Uint64("seed", 0, "RNG seed (0 = the recorded default)")
	trials := fs.Int("trials", 0, "Monte-Carlo trials per point (0 = the recorded default)")
	csv := fs.Bool("csv", false, "emit CSV instead of formatted tables")
	jsonOut := fs.Bool("json", false, "emit JSON instead of formatted tables")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	cfg := expt.Config{Seed: *seed, Trials: *trials}

	runners := map[string]func() []*expt.Table{
		"fig1":   func() []*expt.Table { return []*expt.Table{expt.Fig1()} },
		"fig2":   func() []*expt.Table { return []*expt.Table{expt.Fig2(cfg), expt.Fig2Distribution(cfg)} },
		"table1": func() []*expt.Table { return []*expt.Table{expt.Table1()} },
		"safesets": func() []*expt.Table {
			return []*expt.Table{expt.SafeSetSizes(cfg)}
		},
		"rounds": func() []*expt.Table { return []*expt.Table{expt.RoundsComparison(cfg)} },
		"fig3":   func() []*expt.Table { return []*expt.Table{expt.Fig3()} },
		"guarantee": func() []*expt.Table {
			t, _ := expt.Guarantee(cfg)
			return []*expt.Table{t}
		},
		"thm4": func() []*expt.Table { return []*expt.Table{expt.Theorem4(cfg)} },
		"fig4": func() []*expt.Table { return []*expt.Table{expt.Fig4()} },
		"fig5": func() []*expt.Table { return []*expt.Table{expt.Fig5()} },
		"compare": func() []*expt.Table {
			return []*expt.Table{expt.Compare(cfg)}
		},
		"distributed": func() []*expt.Table {
			return []*expt.Table{expt.Distributed(cfg), expt.AsyncVsSync(cfg), expt.UpdateStrategies(cfg)}
		},
		"ablate": func() []*expt.Table {
			return []*expt.Table{expt.TieBreakAblation(cfg), expt.TruncatedGSAblation(cfg)}
		},
		"broadcast": func() []*expt.Table {
			return []*expt.Table{expt.BroadcastSweep(cfg)}
		},
		"traffic": func() []*expt.Table {
			return []*expt.Table{expt.Traffic(cfg)}
		},
		"ghcube": func() []*expt.Table {
			return []*expt.Table{expt.GHSweep(cfg), expt.GHDistributed(cfg)}
		},
		"churn": func() []*expt.Table {
			return []*expt.Table{expt.ChurnRepair(cfg)}
		},
		"diagnose": func() []*expt.Table {
			return []*expt.Table{expt.DiagnoseSweep(cfg)}
		},
	}
	order := []string{"fig1", "fig2", "table1", "safesets", "rounds", "fig3",
		"guarantee", "thm4", "fig4", "fig5", "compare", "distributed", "ablate",
		"broadcast", "traffic", "ghcube", "churn", "diagnose"}

	var selected []string
	if *experiment == "all" {
		selected = order
	} else {
		for _, name := range strings.Split(*experiment, ",") {
			name = strings.TrimSpace(name)
			if _, ok := runners[name]; !ok {
				fmt.Fprintf(errOut, "slreport: unknown experiment %q (known: all, %s)\n",
					name, strings.Join(order, ", "))
				return 2
			}
			selected = append(selected, name)
		}
	}

	for _, name := range selected {
		for _, tab := range runners[name]() {
			switch {
			case *jsonOut:
				if err := tab.JSON(out); err != nil {
					fmt.Fprintln(errOut, "slreport:", err)
					return 1
				}
			case *csv:
				tab.CSV(out)
			default:
				tab.Render(out)
			}
		}
	}
	return 0
}
