package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestFig1Render(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-experiment", "fig1"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	for _, want := range []string{
		"E1:", "1110 -> 1111 -> 1101 -> 0101 -> 0001",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestCSVAndJSONModes(t *testing.T) {
	var out bytes.Buffer
	if code := run([]string{"-experiment", "table1", "-csv"}, &out, &bytes.Buffer{}); code != 0 {
		t.Fatal("csv mode failed")
	}
	if !strings.HasPrefix(out.String(), "definition,") {
		t.Errorf("csv output wrong: %q", out.String()[:40])
	}
	out.Reset()
	if code := run([]string{"-experiment", "fig5", "-json"}, &out, &bytes.Buffer{}); code != 0 {
		t.Fatal("json mode failed")
	}
	if !strings.Contains(out.String(), "\"id\": \"E9\"") {
		t.Errorf("json output wrong:\n%s", out.String())
	}
}

func TestCommaSeparatedSelection(t *testing.T) {
	var out bytes.Buffer
	if code := run([]string{"-experiment", "fig1, fig3"}, &out, &bytes.Buffer{}); code != 0 {
		t.Fatal("multi selection failed")
	}
	if !strings.Contains(out.String(), "E1:") || !strings.Contains(out.String(), "E5:") {
		t.Error("both selected tables should render")
	}
}

func TestUnknownExperiment(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-experiment", "nonsense"}, &out, &errOut); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "unknown experiment") {
		t.Error("error message missing")
	}
	if code := run([]string{"-badflag"}, &out, &errOut); code != 2 {
		t.Error("bad flag should exit 2")
	}
}

func TestSmallTrialSweep(t *testing.T) {
	// A Monte-Carlo experiment with tiny trials still renders.
	var out bytes.Buffer
	if code := run([]string{"-experiment", "guarantee", "-trials", "3", "-seed", "5"}, &out, &bytes.Buffer{}); code != 0 {
		t.Fatal("guarantee run failed")
	}
	if !strings.Contains(out.String(), "E6:") {
		t.Error("table missing")
	}
}
