// Command slmetrics runs a unicast traffic sweep over a faulty
// hypercube with full instrumentation and exposes the collected metrics:
// GS rounds-to-stabilize and per-link message counts (distributed
// engine), admission-condition and outcome counters, hop/stretch
// histograms, and the level-cache hit ratio.
//
// Usage:
//
//	slmetrics -n 7 -random 12 -seed 3 -pairs 128 -format prom
//	slmetrics -n 6 -random 6 -pairs 64 -format json
//	slmetrics -n 8 -random 20 -pairs 256 -listen :8080
//	slmetrics -radix 2x3x2 -faults 011,100,111,121 -pairs 32 -format prom
//
// With -radix the sweep runs over a generalized hypercube (Section 4.2)
// instead of a binary cube; the same GS, batch-unicast and sequential
// phases run through the topology-generic engine and facade.
//
// Without -listen the registry is dumped to stdout in the chosen format
// ("prom", "json" or "both"). With -listen the process keeps routing the
// sweep in a loop and serves /metrics (Prometheus text), /vars
// (expvar-style JSON) and /debug/vars (stdlib expvar) until killed.
// Exit status: 0 ok, 2 usage error.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	safecube "repro"
	"repro/internal/stats"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "slmetrics:", err)
		if code == 0 {
			code = 2
		}
	}
	os.Exit(code)
}

// run executes one invocation; split from main so the CLI is testable.
func run(args []string, out io.Writer) (int, error) {
	fs := flag.NewFlagSet("slmetrics", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	n := fs.Int("n", 6, "cube dimension")
	radix := fs.String("radix", "", "generalized hypercube shape, e.g. 2x3x2 (dimension n-1 first, like the paper); overrides -n")
	faultList := fs.String("faults", "", "comma-separated faulty node addresses")
	random := fs.Int("random", 0, "inject this many uniform random faults")
	seed := fs.Uint64("seed", 1, "seed for -random and the traffic pattern")
	pairs := fs.Int("pairs", 64, "number of unicast requests in the sweep")
	traced := fs.Int("traced", 4, "record full decision traces for this many requests")
	format := fs.String("format", "both", "dump format: prom, json or both")
	digest := fs.Bool("digest", false, "also print the latency/size quantile digest table")
	listen := fs.String("listen", "", "serve metrics over HTTP on this address instead of dumping")
	if err := fs.Parse(args); err != nil {
		return 2, err
	}
	switch *format {
	case "prom", "json", "both":
	default:
		return 2, fmt.Errorf("bad -format %q, want prom, json or both", *format)
	}

	reg := safecube.NewRegistry()
	reg.KeepTraces(*traced)

	// Both topologies expose the same sweep entry point: -radix swaps the
	// binary cube for a generalized hypercube over the same generic core.
	var (
		sweep  func(seed uint64, traced int) error
		header string
	)
	if *radix != "" {
		rx, err := safecube.ParseRadix(*radix)
		if err != nil {
			return 2, err
		}
		g, err := safecube.NewGeneralized(rx...)
		if err != nil {
			return 2, err
		}
		g.Instrument(reg)
		if *faultList != "" {
			if err := g.FailNamed(splitList(*faultList)...); err != nil {
				return 2, err
			}
		}
		if *random > 0 {
			if err := g.InjectRandomFaults(*seed, *random); err != nil {
				return 2, err
			}
		}
		sweep = func(seed uint64, traced int) error { return runSweepGH(g, seed, *pairs, traced) }
		header = fmt.Sprintf("GH(%s), %d nodes, %d node faults", *radix, g.Nodes(), g.NodeFaults())
	} else {
		c, err := safecube.New(*n)
		if err != nil {
			return 2, err
		}
		c.Instrument(reg)
		if *faultList != "" {
			if err := c.FailNamed(splitList(*faultList)...); err != nil {
				return 2, err
			}
		}
		if *random > 0 {
			if err := c.InjectRandomFaults(*seed, *random); err != nil {
				return 2, err
			}
		}
		sweep = func(seed uint64, traced int) error { return runSweep(c, seed, *pairs, traced) }
		header = c.String()
	}

	if err := sweep(*seed, *traced); err != nil {
		return 2, err
	}
	fmt.Fprintf(out, "# %s; swept %d pairs\n", header, *pairs)
	if gs := reg.LastGS(); gs != nil {
		fmt.Fprintf(out, "# %s\n", gs.Summary())
	}

	if *listen != "" {
		go func() {
			for i := uint64(2); ; i++ {
				if err := sweep(*seed*i, 0); err != nil {
					return
				}
				time.Sleep(time.Second)
			}
		}()
		mux := reg.Mux()
		reg.Publish("safecube")
		mux.Handle("/debug/vars", http.DefaultServeMux)
		fmt.Fprintf(out, "# serving /metrics and /vars on %s\n", *listen)
		return 0, http.ListenAndServe(*listen, mux)
	}

	if *format == "json" || *format == "both" {
		if err := reg.WriteJSON(out); err != nil {
			return 2, err
		}
	}
	if *format == "prom" || *format == "both" {
		if err := reg.WritePrometheus(out); err != nil {
			return 2, err
		}
	}
	if *digest {
		if err := reg.WriteDigest(out); err != nil {
			return 2, err
		}
	}
	return 0, nil
}

// runSweep drives one full instrumented traffic sweep: a distributed GS
// phase (rounds + per-link message counts), batched distributed unicasts
// (protocol message cost), and the same pairs through the sequential
// router (admission and outcome metrics), tracing the first traced
// requests.
func runSweep(c *safecube.Cube, seed uint64, pairs, traced int) error {
	rng := stats.NewRNG(seed * 7919)
	var reqs []safecube.TrafficPair
	for tries := 0; len(reqs) < pairs && tries < pairs*100; tries++ {
		src := safecube.NodeID(rng.Intn(c.Nodes()))
		dst := safecube.NodeID(rng.Intn(c.Nodes()))
		if src == dst || c.NodeFaulty(src) || c.NodeFaulty(dst) {
			continue
		}
		reqs = append(reqs, safecube.TrafficPair{Src: src, Dst: dst})
	}
	if len(reqs) == 0 {
		return fmt.Errorf("no routable pairs in Q%d with %d faults", c.Dim(), c.NodeFaults())
	}

	// Warm the sequential level cache first so the distributed GS trace
	// (the one with per-link message counts) is the registry's LastGS.
	c.ComputeLevels()
	d := c.Distributed()
	defer d.Close()
	d.RunGS()
	for lo := 0; lo < len(reqs); lo += d.MaxBatch() {
		hi := lo + d.MaxBatch()
		if hi > len(reqs) {
			hi = len(reqs)
		}
		if _, err := d.UnicastBatch(reqs[lo:hi]); err != nil {
			return err
		}
	}

	for i, p := range reqs {
		if i < traced {
			c.UnicastTraced(p.Src, p.Dst)
		} else {
			c.Unicast(p.Src, p.Dst)
		}
	}
	return nil
}

// runSweepGH is runSweep over a generalized hypercube: same phases
// (distributed GS, batched distributed unicasts, sequential router),
// driven through the Generalized facade and its GDistributed engine.
func runSweepGH(g *safecube.Generalized, seed uint64, pairs, traced int) error {
	rng := stats.NewRNG(seed * 7919)
	var reqs []safecube.TrafficPair
	for tries := 0; len(reqs) < pairs && tries < pairs*100; tries++ {
		src := safecube.GNodeID(rng.Intn(g.Nodes()))
		dst := safecube.GNodeID(rng.Intn(g.Nodes()))
		if src == dst || g.NodeFaulty(src) || g.NodeFaulty(dst) {
			continue
		}
		reqs = append(reqs, safecube.TrafficPair{Src: src, Dst: dst})
	}
	if len(reqs) == 0 {
		return fmt.Errorf("no routable pairs in the GH with %d faults", g.NodeFaults())
	}

	// Warm the sequential level cache first so the distributed GS trace
	// is the registry's LastGS.
	g.ComputeLevels()
	d := g.Distributed()
	defer d.Close()
	d.RunGS()
	for lo := 0; lo < len(reqs); lo += d.MaxBatch() {
		hi := lo + d.MaxBatch()
		if hi > len(reqs) {
			hi = len(reqs)
		}
		if _, err := d.UnicastBatch(reqs[lo:hi]); err != nil {
			return err
		}
	}

	for i, p := range reqs {
		if i < traced {
			g.UnicastTraced(p.Src, p.Dst)
		} else {
			g.Unicast(p.Src, p.Dst)
		}
	}
	return nil
}

// splitList splits a comma-separated flag value, trimming blanks.
func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
