package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (string, int) {
	t.Helper()
	var buf bytes.Buffer
	code, err := run(args, &buf)
	if err != nil && code != 2 {
		t.Fatalf("unexpected error with code %d: %v", code, err)
	}
	return buf.String(), code
}

func TestPromDump(t *testing.T) {
	out, code := runCLI(t,
		"-n", "4", "-faults", "0011,0100,0110,1001", "-pairs", "16", "-format", "prom")
	if code != 0 {
		t.Fatalf("exit code %d:\n%s", code, out)
	}
	for _, want := range []string{
		// GS rounds and message cost from the distributed engine.
		"stabilized in 2 rounds",
		"safecube_simnet_gs_last_rounds 2",
		"safecube_simnet_gs_runs_total 1",
		"safecube_gs_trace_max_link_messages",
		// Outcome counters from the sequential sweep.
		"safecube_route_unicasts_total 16",
		"# TYPE safecube_route_outcome_optimal_total counter",
		// Level cache: one miss to compute, hits for every admission.
		"safecube_levels_cache_misses_total 1",
		// Histograms export cumulative buckets.
		`safecube_route_path_hops_bucket{le="+Inf"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prom output missing %q", want)
		}
	}
	if strings.Contains(out, "{") && !strings.Contains(out, `le="`) &&
		!strings.Contains(out, `round="`) {
		t.Errorf("unexpected label syntax:\n%s", out)
	}
}

func TestJSONDump(t *testing.T) {
	out, code := runCLI(t,
		"-n", "5", "-random", "3", "-seed", "7", "-pairs", "20", "-format", "json")
	if code != 0 {
		t.Fatalf("exit code %d:\n%s", code, out)
	}
	// Strip the leading "# ..." comment lines, then the rest must be one
	// valid JSON document.
	body := out
	for strings.HasPrefix(body, "#") {
		nl := strings.IndexByte(body, '\n')
		body = body[nl+1:]
	}
	var snap struct {
		Counters map[string]int64 `json:"counters"`
		GS       *struct {
			Kind     string         `json:"kind"`
			Messages int            `json:"messages"`
			PerLink  map[string]int `json:"per_link"`
		} `json:"gs"`
	}
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("JSON dump does not parse: %v\n%s", err, body)
	}
	if got := snap.Counters["route_unicasts_total"]; got != 20 {
		t.Errorf("route_unicasts_total = %d, want 20", got)
	}
	if got, sent := snap.Counters["simnet_unicasts_total"], snap.Counters["simnet_unicast_messages_total"]; got != 20 || sent <= 0 {
		t.Errorf("simnet unicasts = %d (want 20), messages = %d (want > 0)", got, sent)
	}
	if snap.GS == nil || snap.GS.Kind != "simnet-sync" {
		t.Fatalf("last GS trace should be the distributed run, got %+v", snap.GS)
	}
	if snap.GS.Messages <= 0 || len(snap.GS.PerLink) == 0 {
		t.Errorf("distributed GS trace missing message accounting: %+v", snap.GS)
	}
	total := 0
	for _, v := range snap.GS.PerLink {
		total += v
	}
	if total != snap.GS.Messages {
		t.Errorf("per-link counts sum to %d, want %d", total, snap.GS.Messages)
	}
}

// TestGHMetricsCLI runs the sweep over a generalized hypercube: the
// same distributed-GS, batch and sequential phases feed the registry,
// except per-link GS message counts, which are a binary-only metric.
func TestGHMetricsCLI(t *testing.T) {
	out, code := runCLI(t,
		"-radix", "2x3x2", "-faults", "011,100,111,121", "-pairs", "16", "-format", "prom")
	if code != 0 {
		t.Fatalf("exit code %d:\n%s", code, out)
	}
	for _, want := range []string{
		"# GH(2x3x2), 12 nodes, 4 node faults; swept 16 pairs",
		"safecube_route_unicasts_total 16",
		"safecube_simnet_gs_runs_total 1",
		"safecube_levels_cache_misses_total 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prom output missing %q:\n%s", want, out)
		}
	}

	out, code = runCLI(t,
		"-radix", "2x3x2", "-faults", "011,100,111,121", "-pairs", "16", "-format", "json")
	if code != 0 {
		t.Fatalf("exit code %d:\n%s", code, out)
	}
	body := out
	for strings.HasPrefix(body, "#") {
		nl := strings.IndexByte(body, '\n')
		body = body[nl+1:]
	}
	var snap struct {
		Counters map[string]int64 `json:"counters"`
		GS       *struct {
			Kind     string         `json:"kind"`
			Messages int            `json:"messages"`
			PerLink  map[string]int `json:"per_link"`
		} `json:"gs"`
	}
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("JSON dump does not parse: %v\n%s", err, body)
	}
	if got := snap.Counters["route_unicasts_total"]; got != 16 {
		t.Errorf("route_unicasts_total = %d, want 16", got)
	}
	if snap.GS == nil || snap.GS.Kind != "simnet-sync" {
		t.Fatalf("last GS trace should be the distributed run, got %+v", snap.GS)
	}
	if snap.GS.Messages <= 0 {
		t.Errorf("distributed GS trace missing message total: %+v", snap.GS)
	}
	if len(snap.GS.PerLink) != 0 {
		t.Errorf("per-link GS accounting is binary-only, got %v", snap.GS.PerLink)
	}
}

func TestBadFlags(t *testing.T) {
	if _, code := runCLI(t, "-format", "xml"); code != 2 {
		t.Errorf("bad -format: exit %d, want 2", code)
	}
	if _, code := runCLI(t, "-n", "4", "-faults", "banana"); code != 2 {
		t.Errorf("bad fault address: exit %d, want 2", code)
	}
	if _, code := runCLI(t, "-radix", "1x2"); code != 2 {
		t.Errorf("bad radix: exit %d, want 2", code)
	}
}
