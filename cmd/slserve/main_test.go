package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	safecube "repro"
	"repro/internal/monitor"
)

// testServer spins up the full handler over a Q4 with fixed faults.
func testServer(t *testing.T) (*httptest.Server, *safecube.Cube) {
	return testServerOpts(t, safecube.ServeOptions{QueueDepth: 8}, handlerOpts{queueCap: 8})
}

// testServerOpts is testServer with explicit engine and handler
// options, for the hardening tests.
func testServerOpts(t *testing.T, sopts safecube.ServeOptions, hopts handlerOpts) (*httptest.Server, *safecube.Cube) {
	t.Helper()
	c := safecube.MustNew(4)
	if err := c.FailNamed("0011", "1100"); err != nil {
		t.Fatal(err)
	}
	reg := safecube.NewRegistry()
	sopts.Registry = reg
	srv, err := c.Serve(sopts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newHandler(srv, c, reg, hopts))
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return ts, c
}

func getJSON(t *testing.T, url string, wantCode int) map[string]any {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantCode {
		t.Fatalf("GET %s: status %d, want %d", url, resp.StatusCode, wantCode)
	}
	var v map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("GET %s: bad JSON: %v", url, err)
	}
	return v
}

func TestRouteEndpoint(t *testing.T) {
	ts, c := testServer(t)
	v := getJSON(t, ts.URL+"/route?src=0000&dst=1111", http.StatusOK)
	route := v["route"].(map[string]any)
	want := c.Unicast(c.MustParse("0000"), c.MustParse("1111"))
	if route["outcome"] != want.Outcome.String() {
		t.Fatalf("outcome %v, want %v", route["outcome"], want.Outcome)
	}
	if int(route["distance"].(float64)) != want.Hamming {
		t.Fatalf("distance %v, want %d", route["distance"], want.Hamming)
	}
	if int(route["hops"].(float64)) != want.Hops() {
		t.Fatalf("hops %v, want %d", route["hops"], want.Hops())
	}
	if path := route["path"].([]any); len(path) != len(want.Path) {
		t.Fatalf("path length %d, want %d", len(path), len(want.Path))
	} else if len(path) > 0 && path[0] != "0000" {
		t.Fatalf("path starts at %v, want 0000", path[0])
	}

	// Bad requests: missing and malformed parameters.
	getJSON(t, ts.URL+"/route?src=0000", http.StatusBadRequest)
	getJSON(t, ts.URL+"/route?src=0000&dst=banana", http.StatusBadRequest)
}

func TestBatchEndpoint(t *testing.T) {
	ts, c := testServer(t)
	v := getJSON(t, ts.URL+"/batch?pairs=0000-1111,0001-1110", http.StatusOK)
	routes := v["routes"].([]any)
	if len(routes) != 2 {
		t.Fatalf("batch returned %d routes, want 2", len(routes))
	}
	first := routes[0].(map[string]any)
	if first["src"] != "0000" || first["dst"] != "1111" {
		t.Fatalf("batch order broken: %v", first)
	}
	want := c.Unicast(c.MustParse("0001"), c.MustParse("1110"))
	second := routes[1].(map[string]any)
	if second["outcome"] != want.Outcome.String() {
		t.Fatalf("second outcome %v, want %v", second["outcome"], want.Outcome)
	}
	getJSON(t, ts.URL+"/batch?pairs=0000+1111", http.StatusBadRequest)
	getJSON(t, ts.URL+"/batch", http.StatusBadRequest)
}

func TestRouteAllEndpoint(t *testing.T) {
	ts, _ := testServer(t)
	v := getJSON(t, ts.URL+"/routeall?src=0000", http.StatusOK)
	routes := v["routes"].([]any)
	if len(routes) != 15 { // every node but the source
		t.Fatalf("routeall returned %d routes, want 15", len(routes))
	}
	if v["delivered"].(float64) <= 0 {
		t.Fatal("routeall delivered nothing in a connected Q4")
	}
}

func TestFaultAndHealthz(t *testing.T) {
	ts, _ := testServer(t)
	before := getJSON(t, ts.URL+"/healthz", http.StatusOK)
	gen := before["generation"].(float64)
	if before["queue_cap"].(float64) != 8 {
		t.Fatalf("queue_cap %v, want 8", before["queue_cap"])
	}

	v := getJSON(t, ts.URL+"/fault?op=recover-node&a=0011", http.StatusAccepted)
	if v["queued"] != true {
		t.Fatalf("fault not queued: %v", v)
	}
	// Churn is async: poll /healthz until the generation advances.
	deadline := time.Now().Add(5 * time.Second)
	for {
		h := getJSON(t, ts.URL+"/healthz", http.StatusOK)
		if h["generation"].(float64) > gen {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("generation never advanced after fault post")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The recovered node routes again.
	r := getJSON(t, ts.URL+"/route?src=0011&dst=0000", http.StatusOK)
	if r["route"].(map[string]any)["outcome"] == "failure" {
		t.Fatal("recovered node still fails to route")
	}

	getJSON(t, ts.URL+"/fault?op=explode&a=0000", http.StatusBadRequest)
	getJSON(t, ts.URL+"/fault?op=fail-link&a=0000", http.StatusBadRequest)
	// Semantic validation failure: 0000 and 0011 are not neighbors.
	getJSON(t, ts.URL+"/fault?op=fail-link&a=0000&b=0011", http.StatusUnprocessableEntity)
}

func TestMetricsExposition(t *testing.T) {
	ts, _ := testServer(t)
	getJSON(t, ts.URL+"/route?src=0000&dst=0111", http.StatusOK)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	if !strings.Contains(body, "serve_routes_total") {
		t.Fatalf("/metrics missing serve_routes_total:\n%s", body)
	}
	vars := getJSON(t, ts.URL+"/vars", http.StatusOK)
	if len(vars) == 0 {
		t.Fatal("/vars returned an empty object")
	}
}

// TestDeadlineExceeded: a request whose deadline has no chance of
// being met returns 504 promptly with a distinct error, and a bad
// deadline parameter is a 400.
func TestDeadlineExceeded(t *testing.T) {
	ts, _ := testServer(t)
	start := time.Now()
	v := getJSON(t, ts.URL+"/route?src=0000&dst=1111&deadline=1ns", http.StatusGatewayTimeout)
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline-exceeded request took %v, want prompt return", elapsed)
	}
	if msg, _ := v["error"].(string); !strings.Contains(msg, "deadline") {
		t.Fatalf("504 error %q does not mention the deadline", msg)
	}
	getJSON(t, ts.URL+"/batch?pairs=0000-1111&deadline=1ns", http.StatusGatewayTimeout)
	getJSON(t, ts.URL+"/routeall?src=0000&deadline=1ns", http.StatusGatewayTimeout)
	getJSON(t, ts.URL+"/route?src=0000&dst=1111&deadline=banana", http.StatusBadRequest)
	getJSON(t, ts.URL+"/route?src=0000&dst=1111&deadline=-1s", http.StatusBadRequest)
}

// TestOverloadShedding: with a tiny admission bucket the query
// endpoints shed with 429 while /healthz and the metrics exposition
// stay reachable.
func TestOverloadShedding(t *testing.T) {
	ts, _ := testServerOpts(t,
		safecube.ServeOptions{QueueDepth: 8, Rate: 1, Burst: 2},
		handlerOpts{queueCap: 8})
	shed := false
	for i := 0; i < 50 && !shed; i++ {
		resp, err := http.Get(ts.URL + "/route?src=0000&dst=1111")
		if err != nil {
			t.Fatal(err)
		}
		switch resp.StatusCode {
		case http.StatusOK:
		case http.StatusTooManyRequests:
			shed = true
		default:
			t.Fatalf("unexpected status %d under overload", resp.StatusCode)
		}
		resp.Body.Close()
	}
	if !shed {
		t.Fatal("burst of 2 admitted 50 requests; no shedding observed")
	}
	getJSON(t, ts.URL+"/healthz", http.StatusOK) // health is never shed
}

// TestLatencyExposition: every query endpoint records into its
// latency histogram, visible in both expositions.
func TestLatencyExposition(t *testing.T) {
	ts, _ := testServer(t)
	getJSON(t, ts.URL+"/route?src=0000&dst=0111", http.StatusOK)
	getJSON(t, ts.URL+"/healthz", http.StatusOK)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	body := string(raw)
	for _, series := range []string{"latency_http_route_us_bucket", "latency_http_healthz_us_count", "latency_route_us_bucket"} {
		if !strings.Contains(body, "safecube_"+series) {
			t.Fatalf("/metrics missing %s:\n%s", series, body[:min(len(body), 2000)])
		}
	}
	vars := getJSON(t, ts.URL+"/vars", http.StatusOK)
	hists, _ := vars["histograms"].(map[string]any)
	h, ok := hists["latency_http_route_us"].(map[string]any)
	if !ok {
		t.Fatal("/vars missing latency_http_route_us histogram")
	}
	if _, ok := h["quantiles"].(map[string]any); !ok {
		t.Fatal("latency histogram snapshot has no quantiles digest")
	}
}

// TestPprofGating: /debug/pprof is a 404 by default and serves with
// the pprof option on.
func TestPprofGating(t *testing.T) {
	ts, _ := testServer(t)
	resp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/debug/pprof without -pprof: status %d, want 404", resp.StatusCode)
	}

	ts2, _ := testServerOpts(t, safecube.ServeOptions{QueueDepth: 8}, handlerOpts{queueCap: 8, pprof: true})
	resp2, err := http.Get(ts2.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof with -pprof: status %d, want 200", resp2.StatusCode)
	}
	resp3, err := http.Get(ts2.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("/debug/vars with -pprof: status %d, want 200", resp3.StatusCode)
	}
}

// TestProbeAndMonitorEndpoints: /probe reflects the served snapshot's
// per-node fault status with prober-friendly status codes, and /monitor
// is a 404 until the self-healing monitor is enabled.
func TestProbeAndMonitorEndpoints(t *testing.T) {
	ts, _ := testServer(t)
	v := getJSON(t, ts.URL+"/probe?node=0000", http.StatusOK)
	if v["faulty"] != false {
		t.Fatalf("healthy probe: %v", v)
	}
	if v["level"].(float64) < 1 {
		t.Fatalf("healthy node reports level %v", v["level"])
	}
	v = getJSON(t, ts.URL+"/probe?node=0011", http.StatusServiceUnavailable)
	if v["faulty"] != true {
		t.Fatalf("faulty probe: %v", v)
	}
	getJSON(t, ts.URL+"/probe", http.StatusBadRequest)
	getJSON(t, ts.URL+"/probe?node=banana", http.StatusBadRequest)
	getJSON(t, ts.URL+"/monitor", http.StatusNotFound)
}

// TestMonitorAgainstUpstream closes the two-server healing loop over
// real HTTP on a fake clock: an upstream slserve reports node 0011 down
// through /probe, a downstream server's monitor declares it into its
// own fault set after FailK sweeps, /monitor exposes the declaration,
// and an upstream recovery un-declares it.
func TestMonitorAgainstUpstream(t *testing.T) {
	up := safecube.MustNew(4)
	if err := up.FailNamed("0011"); err != nil {
		t.Fatal(err)
	}
	upReg := safecube.NewRegistry()
	upSrv, err := up.Serve(safecube.ServeOptions{QueueDepth: 8, Registry: upReg})
	if err != nil {
		t.Fatal(err)
	}
	upTS := httptest.NewServer(newHandler(upSrv, up, upReg, handlerOpts{queueCap: 8}))
	t.Cleanup(func() { upTS.Close(); upSrv.Close() })

	down := safecube.MustNew(4)
	reg := safecube.NewRegistry()
	srv, err := down.Serve(safecube.ServeOptions{QueueDepth: 8, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(0, 0)
	mon, err := monitor.New(
		monitor.HTTPProber{URL: func(node int) string {
			return upTS.URL + "/probe?node=" + down.Format(safecube.NodeID(node))
		}},
		monitor.ApplyFunc(func(_ context.Context, node int, dn bool) error {
			if dn {
				return srv.FailNode(safecube.NodeID(node))
			}
			return srv.RecoverNode(safecube.NodeID(node))
		}),
		monitor.Options{
			Nodes: down.Nodes(), FailK: 2, RecoverK: 1,
			Now: func() time.Time { return now }, Registry: reg,
		})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newHandler(srv, down, reg, handlerOpts{queueCap: 8, mon: mon}))
	t.Cleanup(func() { ts.Close(); srv.Close() })
	tick := func() monitor.TickResult {
		now = now.Add(time.Second)
		res := mon.Tick(context.Background())
		srv.Flush()
		return res
	}

	victim := down.MustParse("0011")
	tick()
	if res := tick(); res.Declared != 1 {
		t.Fatalf("second sweep declared %d nodes, want 1", res.Declared)
	}
	if !srv.NodeFaulty(victim) {
		t.Fatal("declaration did not land in the downstream fault set")
	}
	v := getJSON(t, ts.URL+"/monitor", http.StatusOK)
	declared, _ := v["declared"].([]any)
	if len(declared) != 1 || int(declared[0].(float64)) != int(victim) {
		t.Fatalf("/monitor declared %v, want [%d]", declared, int(victim))
	}
	if v["declarations"].(float64) != 1 {
		t.Fatalf("/monitor declarations %v, want 1", v["declarations"])
	}

	if err := upSrv.RecoverNode(up.MustParse("0011")); err != nil {
		t.Fatal(err)
	}
	upSrv.Flush()
	if res := tick(); res.Undeclared != 1 {
		t.Fatalf("upstream recovery not mirrored: %+v", res)
	}
	if srv.NodeFaulty(victim) {
		t.Fatal("downstream still marks the recovered node faulty")
	}
}

func TestSplitList(t *testing.T) {
	got := splitList(" a, b ,,c ")
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("splitList = %q", got)
	}
	if splitList("") != nil {
		t.Fatal("splitList(\"\") != nil")
	}
}
