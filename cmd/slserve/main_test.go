package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	safecube "repro"
)

// testServer spins up the full handler over a Q4 with fixed faults.
func testServer(t *testing.T) (*httptest.Server, *safecube.Cube) {
	t.Helper()
	c := safecube.MustNew(4)
	if err := c.FailNamed("0011", "1100"); err != nil {
		t.Fatal(err)
	}
	reg := safecube.NewRegistry()
	srv, err := c.Serve(safecube.ServeOptions{Registry: reg, QueueDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newHandler(srv, c, reg, 8))
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return ts, c
}

func getJSON(t *testing.T, url string, wantCode int) map[string]any {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantCode {
		t.Fatalf("GET %s: status %d, want %d", url, resp.StatusCode, wantCode)
	}
	var v map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("GET %s: bad JSON: %v", url, err)
	}
	return v
}

func TestRouteEndpoint(t *testing.T) {
	ts, c := testServer(t)
	v := getJSON(t, ts.URL+"/route?src=0000&dst=1111", http.StatusOK)
	route := v["route"].(map[string]any)
	want := c.Unicast(c.MustParse("0000"), c.MustParse("1111"))
	if route["outcome"] != want.Outcome.String() {
		t.Fatalf("outcome %v, want %v", route["outcome"], want.Outcome)
	}
	if int(route["distance"].(float64)) != want.Hamming {
		t.Fatalf("distance %v, want %d", route["distance"], want.Hamming)
	}
	if int(route["hops"].(float64)) != want.Hops() {
		t.Fatalf("hops %v, want %d", route["hops"], want.Hops())
	}
	if path := route["path"].([]any); len(path) != len(want.Path) {
		t.Fatalf("path length %d, want %d", len(path), len(want.Path))
	} else if len(path) > 0 && path[0] != "0000" {
		t.Fatalf("path starts at %v, want 0000", path[0])
	}

	// Bad requests: missing and malformed parameters.
	getJSON(t, ts.URL+"/route?src=0000", http.StatusBadRequest)
	getJSON(t, ts.URL+"/route?src=0000&dst=banana", http.StatusBadRequest)
}

func TestBatchEndpoint(t *testing.T) {
	ts, c := testServer(t)
	v := getJSON(t, ts.URL+"/batch?pairs=0000-1111,0001-1110", http.StatusOK)
	routes := v["routes"].([]any)
	if len(routes) != 2 {
		t.Fatalf("batch returned %d routes, want 2", len(routes))
	}
	first := routes[0].(map[string]any)
	if first["src"] != "0000" || first["dst"] != "1111" {
		t.Fatalf("batch order broken: %v", first)
	}
	want := c.Unicast(c.MustParse("0001"), c.MustParse("1110"))
	second := routes[1].(map[string]any)
	if second["outcome"] != want.Outcome.String() {
		t.Fatalf("second outcome %v, want %v", second["outcome"], want.Outcome)
	}
	getJSON(t, ts.URL+"/batch?pairs=0000+1111", http.StatusBadRequest)
	getJSON(t, ts.URL+"/batch", http.StatusBadRequest)
}

func TestRouteAllEndpoint(t *testing.T) {
	ts, _ := testServer(t)
	v := getJSON(t, ts.URL+"/routeall?src=0000", http.StatusOK)
	routes := v["routes"].([]any)
	if len(routes) != 15 { // every node but the source
		t.Fatalf("routeall returned %d routes, want 15", len(routes))
	}
	if v["delivered"].(float64) <= 0 {
		t.Fatal("routeall delivered nothing in a connected Q4")
	}
}

func TestFaultAndHealthz(t *testing.T) {
	ts, _ := testServer(t)
	before := getJSON(t, ts.URL+"/healthz", http.StatusOK)
	gen := before["generation"].(float64)
	if before["queue_cap"].(float64) != 8 {
		t.Fatalf("queue_cap %v, want 8", before["queue_cap"])
	}

	v := getJSON(t, ts.URL+"/fault?op=recover-node&a=0011", http.StatusAccepted)
	if v["queued"] != true {
		t.Fatalf("fault not queued: %v", v)
	}
	// Churn is async: poll /healthz until the generation advances.
	deadline := time.Now().Add(5 * time.Second)
	for {
		h := getJSON(t, ts.URL+"/healthz", http.StatusOK)
		if h["generation"].(float64) > gen {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("generation never advanced after fault post")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The recovered node routes again.
	r := getJSON(t, ts.URL+"/route?src=0011&dst=0000", http.StatusOK)
	if r["route"].(map[string]any)["outcome"] == "failure" {
		t.Fatal("recovered node still fails to route")
	}

	getJSON(t, ts.URL+"/fault?op=explode&a=0000", http.StatusBadRequest)
	getJSON(t, ts.URL+"/fault?op=fail-link&a=0000", http.StatusBadRequest)
	// Semantic validation failure: 0000 and 0011 are not neighbors.
	getJSON(t, ts.URL+"/fault?op=fail-link&a=0000&b=0011", http.StatusUnprocessableEntity)
}

func TestMetricsExposition(t *testing.T) {
	ts, _ := testServer(t)
	getJSON(t, ts.URL+"/route?src=0000&dst=0111", http.StatusOK)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	if !strings.Contains(body, "serve_routes_total") {
		t.Fatalf("/metrics missing serve_routes_total:\n%s", body)
	}
	vars := getJSON(t, ts.URL+"/vars", http.StatusOK)
	if len(vars) == 0 {
		t.Fatal("/vars returned an empty object")
	}
}

func TestSplitList(t *testing.T) {
	got := splitList(" a, b ,,c ")
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("splitList = %q", got)
	}
	if splitList("") != nil {
		t.Fatal("splitList(\"\") != nil")
	}
}
