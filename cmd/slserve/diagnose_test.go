package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	safecube "repro"
	"repro/internal/diagnose"
	"repro/internal/topo"
)

// TestDiagnoseAgainstUpstream closes the loop over HTTP: the upstream
// serves its PMC syndrome on /syndrome, the downstream fetches and
// decodes it, and one identified sweep declares the whole faulty set
// into the downstream engine — where /diagnosis exposes the verdict.
func TestDiagnoseAgainstUpstream(t *testing.T) {
	up := safecube.MustNew(4)
	if err := up.FailNamed("0011", "1100"); err != nil {
		t.Fatal(err)
	}
	upReg := safecube.NewRegistry()
	upSrv, err := up.Serve(safecube.ServeOptions{QueueDepth: 8, Registry: upReg})
	if err != nil {
		t.Fatal(err)
	}
	upTS := httptest.NewServer(newHandler(upSrv, up, upReg, handlerOpts{queueCap: 8}))
	t.Cleanup(func() { upTS.Close(); upSrv.Close() })

	down := safecube.MustNew(4)
	reg := safecube.NewRegistry()
	srv, err := down.Serve(safecube.ServeOptions{QueueDepth: 8, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	dedup := diagnose.NewDedup(diagnose.ApplyFunc(func(_ context.Context, node int, dn bool) error {
		if dn {
			return srv.FailNode(safecube.NodeID(node))
		}
		return srv.RecoverNode(safecube.NodeID(node))
	}))
	tp := srv.CurrentFaults().Topology()
	diag, err := diagnose.NewReconciler(
		diagnose.HTTPSource{URL: upTS.URL + "/syndrome?seed=5&adversary=invert", Topology: tp},
		dedup,
		diagnose.ReconcilerOptions{Topology: tp, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newHandler(srv, down, reg, handlerOpts{queueCap: 8, diag: diag}))
	t.Cleanup(func() { ts.Close(); srv.Close() })

	// One sweep identifies and declares the upstream's whole fault set.
	res, err := diag.Tick(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != diagnose.VerdictIdentified || res.Declared != 2 {
		t.Fatalf("sweep: %+v", res)
	}
	srv.Flush()
	for _, name := range []string{"0011", "1100"} {
		if !srv.NodeFaulty(down.MustParse(name)) {
			t.Fatalf("diagnosed fault %s did not land downstream", name)
		}
	}

	v := getJSON(t, ts.URL+"/diagnosis", http.StatusOK)
	if v["verdict"] != "identified" {
		t.Fatalf("/diagnosis verdict %v", v["verdict"])
	}
	if declared, _ := v["declared"].([]any); len(declared) != 2 {
		t.Fatalf("/diagnosis declared %v, want 2 nodes", v["declared"])
	}

	// An upstream recovery un-declares on the next sweep.
	if err := upSrv.RecoverNode(up.MustParse("0011")); err != nil {
		t.Fatal(err)
	}
	upSrv.Flush()
	res, err = diag.Tick(context.Background())
	if err != nil || res.Recovered != 1 {
		t.Fatalf("recovery sweep: %+v err=%v", res, err)
	}
	srv.Flush()
	if srv.NodeFaulty(down.MustParse("0011")) {
		t.Fatal("recovered node still declared downstream")
	}
}

// TestSyndromeEndpoint checks the wire contract of /syndrome: the body
// parses against the server's topology, decodes to its declared fault
// set, is deterministic per seed, and rejects bad parameters.
func TestSyndromeEndpoint(t *testing.T) {
	ts, _ := testServer(t)

	get := func(q string) []byte {
		t.Helper()
		resp, err := http.Get(ts.URL + "/syndrome" + q)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /syndrome%s: status %d", q, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}

	body := get("?seed=3&adversary=invert")
	tp, err := topo.NewCube(4)
	if err != nil {
		t.Fatal(err)
	}
	syn, err := diagnose.ParseSyndrome(body, tp)
	if err != nil {
		t.Fatalf("syndrome body does not parse: %v", err)
	}
	diag := diagnose.Decode(syn, diagnose.Options{})
	if diag.Verdict != diagnose.VerdictIdentified || len(diag.Faulty) != 2 {
		t.Fatalf("decoded %+v, want the server's 2 faults", diag)
	}

	if string(get("?seed=3&adversary=random")) != string(get("?seed=3&adversary=random")) {
		t.Fatal("same seed produced different syndromes")
	}
	var blob map[string]any
	if err := json.Unmarshal(body, &blob); err != nil || blob["format"] != diagnose.SyndromeFormat {
		t.Fatalf("body format %v err=%v", blob["format"], err)
	}

	for _, q := range []string{"?seed=no", "?adversary=liar"} {
		resp, err := http.Get(ts.URL + "/syndrome" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("GET /syndrome%s: status %d, want 400", q, resp.StatusCode)
		}
	}

	// Without -diagnose-target the status endpoint is a 404, but the
	// syndrome stays mounted (this server can still be the tested side).
	getJSON(t, ts.URL+"/diagnosis", http.StatusNotFound)
}
