// Command slserve exposes the concurrent route-serving engine over
// HTTP: lock-free unicast queries against immutable level snapshots,
// with fault churn applied through the engine's bounded queue and each
// repaired assignment published by a single atomic snapshot swap. The
// serving path is production-hardened: per-request deadlines, token-
// bucket admission control, per-endpoint latency histograms, optional
// pprof/expvar debug endpoints, and a graceful drain on SIGINT/SIGTERM
// (see docs/OPERATIONS.md for the full operator guide).
//
// Usage:
//
//	slserve -n 6 -random 4 -seed 3 -listen :8080
//	slserve -radix 2x3x2 -faults 011,100 -listen :8080
//	slserve -n 10 -rate 50000 -burst 1000 -deadline 2s -pprof
//	slserve -n 8 -listen :8080 -wire-addr :9090
//
// With -wire-addr the server additionally speaks the length-prefixed
// binary wire protocol (internal/wire) on that address — the high-
// throughput data plane that slload -wire drives — while HTTP stays up
// for ops. See docs/OPERATIONS.md ("The binary wire protocol").
//
// Endpoints:
//
//	/route?src=ADDR&dst=ADDR    one unicast against the current snapshot
//	/batch?pairs=A-B,C-D,...    many unicasts pinned to ONE snapshot
//	/routeall?src=ADDR          fan-out from src to every other node
//	/fault?op=OP&a=ADDR[&b=ADDR]  enqueue churn: op is fail-node,
//	                            recover-node, fail-link or recover-link
//	/probe?node=ADDR            per-node health: 200 if the served
//	                            snapshot holds the node healthy, 503 if
//	                            it is marked faulty
//	/monitor                    self-healing monitor status (declared
//	                            nodes, probe counters); 404 unless the
//	                            monitor is enabled
//	/syndrome                   PMC self-test syndrome of the served
//	                            snapshot (?seed=N&adversary=POLICY
//	                            override the -diagnose-* defaults);
//	                            always mounted
//	/diagnosis                  syndrome-decoder status (verdict,
//	                            declared nodes, sweep counters); 404
//	                            unless -diagnose-target is set
//	/healthz                    generation, queue depth, inflight, state
//	/metrics, /vars             Prometheus text / JSON registry dump
//	/debug/flight               flight recorder: recent request records
//	                            (?limit=N, ?format=text)
//	/debug/incidents            promoted anomalies with per-hop traces
//	                            (?format=text)
//	/debug/pprof/*, /debug/vars profiling + expvar (only with -pprof)
//
// The query endpoints accept an optional deadline=DURATION parameter,
// clamped to the -deadline flag. Status codes on the query endpoints:
// 200 served, 400 bad request, 429 shed by admission control (-rate),
// 503 draining after a shutdown signal, 504 deadline exceeded.
//
// Addresses use the topology's own notation: n-bit binary strings for
// a cube ("0110"), per-dimension digit strings for a generalized
// hypercube ("121"). Fault posts return 202: churn is asynchronous and
// the snapshot generation in /healthz advances once it is applied.
//
// Self-healing monitor (-monitor-target URL): probe an upstream
// slserve's /probe endpoint for every node, declare a node into THIS
// server's fault set after -monitor-k consecutive misses, and
// un-declare it after -monitor-recover consecutive healthy probes — so
// this server's routes detour around whatever the upstream reports
// down, with flap hysteresis (see internal/monitor). Do not point a
// server's monitor at itself: its own declarations would read back as
// misses and stick forever.
//
// Syndrome diagnosis (-diagnose-target URL): fetch the upstream
// slserve's /syndrome — the full PMC neighbor-test syndrome of its
// served snapshot — decode it (internal/diagnose), and declare the
// identified faulty set into THIS server's fault set every
// -diagnose-every. Unlike the monitor, which needs -monitor-k
// consecutive sweeps per node, one identified sweep declares the whole
// set; an ambiguous decode (fault count past the diagnosability bound)
// declares nothing and is surfaced on /diagnosis, in
// diagnose_ambiguous_total and as a diagnosis-ambiguous incident.
// Monitor and diagnoser may run together: both feed one shared
// deduplicating applier, so a node both of them declare produces a
// single churn event and a single journal delta. The same self-test
// caveat applies: do not point -diagnose-target at the server itself.
// Exit status: 0 ok (including a clean drain), 1 drain timeout,
// 2 usage error.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"net/url"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	safecube "repro"
	"repro/internal/diagnose"
	"repro/internal/monitor"
	"repro/internal/obs"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "slserve:", err)
		if code == 0 {
			code = 2
		}
	}
	os.Exit(code)
}

// naming is the slice of both facades the handler needs: address
// parsing and formatting over a shared NodeID space (NodeID and
// GNodeID are the same type).
type naming interface {
	Parse(addr string) (safecube.NodeID, error)
	Format(a safecube.NodeID) string
	Nodes() int
}

// run executes one invocation; split from main so the CLI is testable.
func run(args []string, out io.Writer) (int, error) {
	fs := flag.NewFlagSet("slserve", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	n := fs.Int("n", 6, "cube dimension")
	radix := fs.String("radix", "", "generalized hypercube shape, e.g. 2x3x2; overrides -n")
	faultList := fs.String("faults", "", "comma-separated faulty node addresses")
	random := fs.Int("random", 0, "inject this many uniform random faults")
	seed := fs.Uint64("seed", 1, "seed for -random")
	queue := fs.Int("queue", 0, "churn apply-queue depth (0 means the engine default, 64)")
	workers := fs.Int("workers", 0, "batch worker pool size (0 means GOMAXPROCS)")
	rate := fs.Float64("rate", 0, "admission control: max admitted unicasts/sec (0 disables)")
	burst := fs.Int("burst", 0, "admission token-bucket depth in unicasts (0 means 1)")
	deadline := fs.Duration("deadline", 5*time.Second, "per-request deadline ceiling (0 disables)")
	drain := fs.Duration("drain", 10*time.Second, "graceful-shutdown drain timeout on SIGINT/SIGTERM")
	pprofOn := fs.Bool("pprof", false, "mount /debug/pprof and /debug/vars")
	listen := fs.String("listen", ":8080", "HTTP listen address")
	wireAddr := fs.String("wire-addr", "", "binary wire-protocol listen address (empty disables)")
	wireWorkers := fs.Int("wire-workers", 0, "wire per-connection worker count (0 means min(GOMAXPROCS, 4))")
	noFlight := fs.Bool("no-flight", false, "disable the always-on flight recorder")
	monTarget := fs.String("monitor-target", "", "upstream slserve base URL to health-probe; declares its down nodes into this server's fault set")
	monEvery := fs.Duration("monitor-every", time.Second, "monitor probe sweep interval")
	monK := fs.Int("monitor-k", 3, "consecutive missed probes before a node is declared faulty")
	monRecover := fs.Int("monitor-recover", 2, "consecutive healthy probes before a declared node recovers")
	diagTarget := fs.String("diagnose-target", "", "upstream slserve base URL whose /syndrome to decode; declares the diagnosed faulty set into this server's fault set")
	diagEvery := fs.Duration("diagnose-every", 2*time.Second, "diagnosis sweep interval")
	diagBound := fs.Int("diagnose-bound", 0, "diagnosability bound override (0 means the topology's own bound)")
	diagAdversary := fs.String("diagnose-adversary", "", "faulty-tester policy for /syndrome and the upstream fetch: truthful, stealth, slander, invert or random (default invert)")
	diagSeed := fs.Uint64("diagnose-seed", 1, "seed for deterministic faulty-tester reports on /syndrome")
	flightRecords := fs.Int("flight-records", 4096, "flight-recorder ring capacity in request records")
	flightIncidents := fs.Int("flight-incidents", 64, "incident buffer capacity")
	flightSlow := fs.Duration("flight-slow", 50*time.Millisecond, "per-route latency threshold that promotes a request to an incident")
	if err := fs.Parse(args); err != nil {
		return 2, err
	}

	reg := safecube.NewRegistry()
	var flight *safecube.FlightRecorder
	if !*noFlight {
		flight = safecube.NewFlightRecorder(safecube.FlightOptions{
			Records:     *flightRecords,
			Incidents:   *flightIncidents,
			SlowRouteUS: (*flightSlow).Microseconds(),
			Registry:    reg,
		})
	}
	var (
		nm     naming
		srv    *safecube.Server
		header string
		err    error
	)
	opts := safecube.ServeOptions{
		QueueDepth: *queue,
		Workers:    *workers,
		Rate:       *rate,
		Burst:      *burst,
		Registry:   reg,
		Flight:     flight,
		NoFlight:   *noFlight,
	}
	if *radix != "" {
		rx, rerr := safecube.ParseRadix(*radix)
		if rerr != nil {
			return 2, rerr
		}
		g, gerr := safecube.NewGeneralized(rx...)
		if gerr != nil {
			return 2, gerr
		}
		if *faultList != "" {
			if err := g.FailNamed(splitList(*faultList)...); err != nil {
				return 2, err
			}
		}
		if *random > 0 {
			if err := g.InjectRandomFaults(*seed, *random); err != nil {
				return 2, err
			}
		}
		srv, err = g.Serve(opts)
		nm = g
		header = fmt.Sprintf("GH(%s), %d nodes, %d node faults", *radix, g.Nodes(), g.NodeFaults())
	} else {
		c, cerr := safecube.New(*n)
		if cerr != nil {
			return 2, cerr
		}
		if *faultList != "" {
			if err := c.FailNamed(splitList(*faultList)...); err != nil {
				return 2, err
			}
		}
		if *random > 0 {
			if err := c.InjectRandomFaults(*seed, *random); err != nil {
				return 2, err
			}
		}
		srv, err = c.Serve(opts)
		nm = c
		header = c.String()
	}
	if err != nil {
		return 2, err
	}
	defer srv.Close()

	adv, err := diagnose.ParseAdversary(*diagAdversary)
	if err != nil {
		return 2, err
	}

	// Monitor and diagnoser both declare into this server; route both
	// through ONE deduplicating applier so a node they agree on lands as
	// a single churn event and a single journal delta.
	dedup := diagnose.NewDedup(diagnose.ApplyFunc(func(_ context.Context, node int, down bool) error {
		if down {
			return srv.FailNode(safecube.NodeID(node))
		}
		return srv.RecoverNode(safecube.NodeID(node))
	}))

	var mon *monitor.Monitor
	var monCancel context.CancelFunc
	if *monTarget != "" {
		base := strings.TrimRight(*monTarget, "/")
		mon, err = monitor.New(
			monitor.HTTPProber{URL: func(node int) string {
				return base + "/probe?node=" + url.QueryEscape(nm.Format(safecube.NodeID(node)))
			}},
			dedup,
			monitor.Options{
				Nodes:    nm.Nodes(),
				FailK:    *monK,
				RecoverK: *monRecover,
				Interval: *monEvery,
				Registry: reg,
			})
		if err != nil {
			return 2, err
		}
		var monCtx context.Context
		monCtx, monCancel = context.WithCancel(context.Background())
		defer monCancel()
		go mon.Run(monCtx)
	}

	var diag *diagnose.Reconciler
	var diagCancel context.CancelFunc
	if *diagTarget != "" {
		base := strings.TrimRight(*diagTarget, "/")
		synURL := fmt.Sprintf("%s/syndrome?seed=%d&adversary=%s",
			base, *diagSeed, url.QueryEscape(string(adv)))
		diag, err = diagnose.NewReconciler(
			diagnose.HTTPSource{URL: synURL, Topology: srv.CurrentFaults().Topology()},
			dedup,
			diagnose.ReconcilerOptions{
				Topology: srv.CurrentFaults().Topology(),
				Bound:    *diagBound,
				Interval: *diagEvery,
				Registry: reg,
				Flight:   flight,
			})
		if err != nil {
			return 2, err
		}
		var diagCtx context.Context
		diagCtx, diagCancel = context.WithCancel(context.Background())
		defer diagCancel()
		go diag.Run(diagCtx)
	}

	var wireSrv *safecube.WireServer
	if *wireAddr != "" {
		wireSrv, err = srv.ServeWire(*wireAddr, safecube.WireOptions{
			Workers:  *wireWorkers,
			Registry: reg,
		})
		if err != nil {
			return 2, err
		}
		defer wireSrv.Close()
	}

	queueCap := *queue
	if queueCap <= 0 {
		queueCap = 64
	}
	mux := newHandler(srv, nm, reg, handlerOpts{
		queueCap: queueCap,
		deadline: *deadline,
		pprof:    *pprofOn,
		mon:      mon,
		diag:     diag,
		diagSeed: *diagSeed,
		diagAdv:  adv,
	})
	httpSrv := &http.Server{Addr: *listen, Handler: mux}
	if wireSrv != nil {
		fmt.Fprintf(out, "# %s; serving routes on %s, wire on %s\n", header, *listen, wireSrv.Addr())
	} else {
		fmt.Fprintf(out, "# %s; serving routes on %s\n", header, *listen)
	}

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)

	select {
	case err := <-errCh:
		return 0, err
	case sig := <-sigCh:
		// Graceful drain, strictly ordered: stop accepting connections
		// and wait out the HTTP handlers, then drain the engine (its
		// in-flight requests, then the churn queue, then the final
		// snapshot swap, then the applier).
		fmt.Fprintf(out, "# %v: draining (timeout %s)\n", sig, *drain)
		if monCancel != nil {
			// Stop the monitor first so no new declarations race the
			// engine drain.
			monCancel()
		}
		if diagCancel != nil {
			// Same for the diagnoser: no sweep may declare mid-drain.
			diagCancel()
		}
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if wireSrv != nil {
			// Close the wire surface before the engine drains: Close
			// waits out the per-connection pipelines, so no wire request
			// is in flight when srv.Shutdown starts.
			_ = wireSrv.Close()
		}
		if herr := httpSrv.Shutdown(ctx); herr != nil {
			srv.Close()
			return 1, fmt.Errorf("http drain incomplete: %w", herr)
		}
		if serr := srv.Shutdown(ctx); serr != nil {
			return 1, fmt.Errorf("engine drain incomplete: %w", serr)
		}
		fmt.Fprintln(out, "# drained cleanly")
		return 0, nil
	}
}

// routeJSON is the wire form of one route result.
type routeJSON struct {
	Src       string   `json:"src"`
	Dst       string   `json:"dst"`
	Outcome   string   `json:"outcome"`
	Condition string   `json:"condition"`
	Distance  int      `json:"distance"`
	Hops      int      `json:"hops"`
	Path      []string `json:"path,omitempty"`
	Err       string   `json:"err,omitempty"`
}

func routeWire(r *safecube.Route, nm naming) routeJSON {
	out := routeJSON{
		Src:       nm.Format(r.Source),
		Dst:       nm.Format(r.Dest),
		Outcome:   r.Outcome.String(),
		Condition: r.Condition.String(),
		Distance:  r.Hamming,
		Hops:      r.Hops(),
	}
	for _, a := range r.Path {
		out.Path = append(out.Path, nm.Format(a))
	}
	if r.Err != nil {
		out.Err = r.Err.Error()
	}
	return out
}

// handlerOpts configure the HTTP surface.
type handlerOpts struct {
	queueCap int
	// deadline caps (and defaults) the per-request deadline; requests
	// may lower it with ?deadline=DURATION but never raise it past
	// this. 0 disables server-imposed deadlines.
	deadline time.Duration
	// pprof mounts /debug/pprof/* and /debug/vars.
	pprof bool
	// mon, when non-nil, backs the /monitor status endpoint.
	mon *monitor.Monitor
	// diag, when non-nil, backs the /diagnosis status endpoint.
	diag *diagnose.Reconciler
	// diagSeed and diagAdv are the /syndrome defaults when the request
	// carries no seed/adversary parameters.
	diagSeed uint64
	diagAdv  diagnose.Adversary
}

// newHandler builds the serving mux on top of the registry's /metrics
// and /vars exposition.
func newHandler(srv *safecube.Server, nm naming, reg *safecube.Registry, opts handlerOpts) http.Handler {
	mux := reg.Mux()

	node := func(w http.ResponseWriter, r *http.Request, key string) (safecube.NodeID, bool) {
		v := r.URL.Query().Get(key)
		if v == "" {
			httpErr(w, http.StatusBadRequest, fmt.Errorf("missing %q parameter", key))
			return 0, false
		}
		a, err := nm.Parse(v)
		if err != nil {
			httpErr(w, http.StatusBadRequest, err)
			return 0, false
		}
		return a, true
	}

	// reqCtx derives the request context: the server ceiling from
	// opts.deadline, optionally tightened by a ?deadline= parameter.
	reqCtx := func(w http.ResponseWriter, r *http.Request) (context.Context, context.CancelFunc, bool) {
		limit := opts.deadline
		if raw := r.URL.Query().Get("deadline"); raw != "" {
			d, err := time.ParseDuration(raw)
			if err != nil || d <= 0 {
				httpErr(w, http.StatusBadRequest, fmt.Errorf("bad deadline %q, want a positive duration", raw))
				return nil, nil, false
			}
			if limit == 0 || d < limit {
				limit = d
			}
		}
		if limit == 0 {
			return r.Context(), func() {}, true
		}
		ctx, cancel := context.WithTimeout(r.Context(), limit)
		return ctx, cancel, true
	}

	// instrument wraps a handler with its endpoint latency histogram
	// (wall time including encoding, recorded in microseconds).
	instrument := func(name string, h http.HandlerFunc) http.HandlerFunc {
		hist := reg.LatencyHistogram(name)
		return func(w http.ResponseWriter, r *http.Request) {
			start := time.Now()
			h(w, r)
			hist.ObserveSince(start)
		}
	}

	mux.HandleFunc("/route", instrument(obs.MetricLatencyHTTPRoute, func(w http.ResponseWriter, r *http.Request) {
		src, ok := node(w, r, "src")
		if !ok {
			return
		}
		dst, ok := node(w, r, "dst")
		if !ok {
			return
		}
		ctx, cancel, ok := reqCtx(w, r)
		if !ok {
			return
		}
		defer cancel()
		rt, err := srv.UnicastCtx(ctx, src, dst)
		if err != nil {
			serveErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"generation": srv.Generation(),
			"request_id": rt.RequestID,
			"route":      routeWire(rt, nm),
		})
	}))

	mux.HandleFunc("/batch", instrument(obs.MetricLatencyHTTPBatch, func(w http.ResponseWriter, r *http.Request) {
		raw := r.URL.Query().Get("pairs")
		if raw == "" {
			httpErr(w, http.StatusBadRequest, errors.New(`missing "pairs" parameter (want "SRC-DST,SRC-DST,...")`))
			return
		}
		var pairs []safecube.TrafficPair
		for _, item := range splitList(raw) {
			ab := strings.SplitN(item, "-", 2)
			if len(ab) != 2 {
				httpErr(w, http.StatusBadRequest, fmt.Errorf("bad pair %q, want SRC-DST", item))
				return
			}
			src, err := nm.Parse(ab[0])
			if err != nil {
				httpErr(w, http.StatusBadRequest, err)
				return
			}
			dst, err := nm.Parse(ab[1])
			if err != nil {
				httpErr(w, http.StatusBadRequest, err)
				return
			}
			pairs = append(pairs, safecube.TrafficPair{Src: src, Dst: dst})
		}
		ctx, cancel, ok := reqCtx(w, r)
		if !ok {
			return
		}
		defer cancel()
		routes, err := srv.BatchUnicastCtx(ctx, pairs)
		if err != nil {
			serveErr(w, err)
			return
		}
		wire := make([]routeJSON, len(routes))
		for i, rt := range routes {
			wire[i] = routeWire(rt, nm)
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"generation": srv.Generation(),
			"routes":     wire,
		})
	}))

	mux.HandleFunc("/routeall", instrument(obs.MetricLatencyHTTPRouteAll, func(w http.ResponseWriter, r *http.Request) {
		src, ok := node(w, r, "src")
		if !ok {
			return
		}
		ctx, cancel, ok := reqCtx(w, r)
		if !ok {
			return
		}
		defer cancel()
		all, err := srv.RouteAllCtx(ctx, src)
		if err != nil {
			serveErr(w, err)
			return
		}
		wire := make([]routeJSON, 0, len(all)-1)
		delivered := 0
		for _, rt := range all {
			if rt == nil {
				continue
			}
			if rt.Outcome != safecube.Failure {
				delivered++
			}
			wire = append(wire, routeWire(rt, nm))
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"generation": srv.Generation(),
			"delivered":  delivered,
			"routes":     wire,
		})
	}))

	mux.HandleFunc("/fault", instrument(obs.MetricLatencyHTTPFault, func(w http.ResponseWriter, r *http.Request) {
		op := r.URL.Query().Get("op")
		a, ok := node(w, r, "a")
		if !ok {
			return
		}
		var err error
		switch op {
		case "fail-node":
			err = srv.FailNode(a)
		case "recover-node":
			err = srv.RecoverNode(a)
		case "fail-link", "recover-link":
			b, ok := node(w, r, "b")
			if !ok {
				return
			}
			if op == "fail-link" {
				err = srv.FailLink(a, b)
			} else {
				err = srv.RecoverLink(a, b)
			}
		default:
			httpErr(w, http.StatusBadRequest,
				fmt.Errorf("bad op %q, want fail-node, recover-node, fail-link or recover-link", op))
			return
		}
		if err != nil {
			if errors.Is(err, safecube.ErrServerClosed) {
				httpErr(w, http.StatusServiceUnavailable, err)
				return
			}
			httpErr(w, http.StatusUnprocessableEntity, err)
			return
		}
		// 202: churn is asynchronous; the generation advances on publish.
		writeJSON(w, http.StatusAccepted, map[string]any{
			"queued":      true,
			"generation":  srv.Generation(),
			"queue_depth": srv.QueueDepth(),
		})
	}))

	mux.HandleFunc("/probe", instrument(obs.MetricLatencyHTTPProbe, func(w http.ResponseWriter, r *http.Request) {
		a, ok := node(w, r, "node")
		if !ok {
			return
		}
		// 503 for a faulty node so any status-driven prober (including
		// monitor.HTTPProber) reads it as a miss without parsing JSON.
		if srv.NodeFaulty(a) {
			writeJSON(w, http.StatusServiceUnavailable, map[string]any{
				"node": nm.Format(a), "faulty": true,
			})
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"node": nm.Format(a), "faulty": false, "level": srv.Level(a),
		})
	}))

	mux.HandleFunc("/monitor", func(w http.ResponseWriter, r *http.Request) {
		if opts.mon == nil {
			httpErr(w, http.StatusNotFound, errors.New("monitor disabled (start slserve with -monitor-target)"))
			return
		}
		writeJSON(w, http.StatusOK, opts.mon.Status())
	})

	// /syndrome is always mounted: any slserve can be the tested system,
	// whether or not it also runs a diagnoser. The syndrome is collected
	// from ONE published snapshot, so every neighbor test in the sweep
	// observes the same fault-set generation.
	mux.HandleFunc("/syndrome", instrument(obs.MetricLatencyHTTPSyndrome, func(w http.ResponseWriter, r *http.Request) {
		seed := opts.diagSeed
		if raw := r.URL.Query().Get("seed"); raw != "" {
			v, err := strconv.ParseUint(raw, 10, 64)
			if err != nil {
				httpErr(w, http.StatusBadRequest, fmt.Errorf("bad seed %q, want an unsigned integer", raw))
				return
			}
			seed = v
		}
		adv := opts.diagAdv
		if raw := r.URL.Query().Get("adversary"); raw != "" {
			v, err := diagnose.ParseAdversary(raw)
			if err != nil {
				httpErr(w, http.StatusBadRequest, err)
				return
			}
			adv = v
		}
		syn := diagnose.Collect(srv.CurrentFaults(), diagnose.CollectOptions{Seed: seed, Adversary: adv})
		writeJSON(w, http.StatusOK, syn)
	}))

	mux.HandleFunc("/diagnosis", func(w http.ResponseWriter, r *http.Request) {
		if opts.diag == nil {
			httpErr(w, http.StatusNotFound, errors.New("diagnosis disabled (start slserve with -diagnose-target)"))
			return
		}
		writeJSON(w, http.StatusOK, opts.diag.Status())
	})

	mux.HandleFunc("/healthz", instrument(obs.MetricLatencyHTTPHealthz, func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"generation":  srv.Generation(),
			"queue_depth": srv.QueueDepth(),
			"queue_cap":   opts.queueCap,
			"inflight":    srv.Inflight(),
			"nodes":       nm.Nodes(),
		})
	}))

	// Flight-recorder exposition: always mounted (the recorder is on by
	// default; with -no-flight these return empty snapshots).
	// ?limit=N truncates to the N newest records; ?format=text renders
	// the slmetrics-style table/transcript instead of JSON.
	mux.HandleFunc("/debug/flight", func(w http.ResponseWriter, r *http.Request) {
		limit := 0
		if raw := r.URL.Query().Get("limit"); raw != "" {
			n, err := strconv.Atoi(raw)
			if err != nil || n < 0 {
				httpErr(w, http.StatusBadRequest, fmt.Errorf("bad limit %q, want a non-negative integer", raw))
				return
			}
			limit = n
		}
		snap := srv.Flight().Snapshot(limit)
		if r.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			_ = obs.WriteFlightText(w, snap)
			return
		}
		writeJSON(w, http.StatusOK, snap)
	})
	mux.HandleFunc("/debug/incidents", func(w http.ResponseWriter, r *http.Request) {
		snap := srv.Flight().Incidents()
		if r.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			_ = obs.WriteIncidentsText(w, snap, func(a int) string {
				return nm.Format(safecube.NodeID(a))
			})
			return
		}
		writeJSON(w, http.StatusOK, snap)
	})

	if opts.pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/debug/vars", expvar.Handler())
	}

	return mux
}

// serveErr maps an engine error on the query path to its status code:
// shedding, draining and deadline expiry each get a distinct one so
// clients (and the slload report) can tell them apart.
func serveErr(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, safecube.ErrServerOverload):
		httpErr(w, http.StatusTooManyRequests, err)
	case errors.Is(err, safecube.ErrServerDraining):
		httpErr(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, context.DeadlineExceeded):
		httpErr(w, http.StatusGatewayTimeout, err)
	case errors.Is(err, context.Canceled):
		// The client went away; 499 is the conventional (nginx) code.
		httpErr(w, 499, err)
	default:
		httpErr(w, http.StatusInternalServerError, err)
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func httpErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// splitList splits a comma-separated value, trimming blanks.
func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
