// Command slserve exposes the concurrent route-serving engine over
// HTTP: lock-free unicast queries against immutable level snapshots,
// with fault churn applied through the engine's bounded queue and each
// repaired assignment published by a single atomic snapshot swap.
//
// Usage:
//
//	slserve -n 6 -random 4 -seed 3 -listen :8080
//	slserve -radix 2x3x2 -faults 011,100 -listen :8080
//
// Endpoints:
//
//	/route?src=ADDR&dst=ADDR    one unicast against the current snapshot
//	/batch?pairs=A-B,C-D,...    many unicasts pinned to ONE snapshot
//	/routeall?src=ADDR          fan-out from src to every other node
//	/fault?op=OP&a=ADDR[&b=ADDR]  enqueue churn: op is fail-node,
//	                            recover-node, fail-link or recover-link
//	/healthz                    {"generation","queue_depth","queue_cap"}
//	/metrics, /vars             Prometheus text / JSON registry dump
//
// Addresses use the topology's own notation: n-bit binary strings for
// a cube ("0110"), per-dimension digit strings for a generalized
// hypercube ("121"). Fault posts return 202: churn is asynchronous and
// the snapshot generation in /healthz advances once it is applied.
// Exit status: 0 ok, 2 usage error.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"

	safecube "repro"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "slserve:", err)
		if code == 0 {
			code = 2
		}
	}
	os.Exit(code)
}

// naming is the slice of both facades the handler needs: address
// parsing and formatting over a shared NodeID space (NodeID and
// GNodeID are the same type).
type naming interface {
	Parse(addr string) (safecube.NodeID, error)
	Format(a safecube.NodeID) string
	Nodes() int
}

// run executes one invocation; split from main so the CLI is testable.
func run(args []string, out io.Writer) (int, error) {
	fs := flag.NewFlagSet("slserve", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	n := fs.Int("n", 6, "cube dimension")
	radix := fs.String("radix", "", "generalized hypercube shape, e.g. 2x3x2; overrides -n")
	faultList := fs.String("faults", "", "comma-separated faulty node addresses")
	random := fs.Int("random", 0, "inject this many uniform random faults")
	seed := fs.Uint64("seed", 1, "seed for -random")
	queue := fs.Int("queue", 0, "churn apply-queue depth (0 means the engine default, 64)")
	workers := fs.Int("workers", 0, "batch worker pool size (0 means GOMAXPROCS)")
	listen := fs.String("listen", ":8080", "HTTP listen address")
	if err := fs.Parse(args); err != nil {
		return 2, err
	}

	reg := safecube.NewRegistry()
	var (
		nm     naming
		srv    *safecube.Server
		header string
		err    error
	)
	opts := safecube.ServeOptions{QueueDepth: *queue, Workers: *workers, Registry: reg}
	if *radix != "" {
		rx, rerr := safecube.ParseRadix(*radix)
		if rerr != nil {
			return 2, rerr
		}
		g, gerr := safecube.NewGeneralized(rx...)
		if gerr != nil {
			return 2, gerr
		}
		if *faultList != "" {
			if err := g.FailNamed(splitList(*faultList)...); err != nil {
				return 2, err
			}
		}
		if *random > 0 {
			if err := g.InjectRandomFaults(*seed, *random); err != nil {
				return 2, err
			}
		}
		srv, err = g.Serve(opts)
		nm = g
		header = fmt.Sprintf("GH(%s), %d nodes, %d node faults", *radix, g.Nodes(), g.NodeFaults())
	} else {
		c, cerr := safecube.New(*n)
		if cerr != nil {
			return 2, cerr
		}
		if *faultList != "" {
			if err := c.FailNamed(splitList(*faultList)...); err != nil {
				return 2, err
			}
		}
		if *random > 0 {
			if err := c.InjectRandomFaults(*seed, *random); err != nil {
				return 2, err
			}
		}
		srv, err = c.Serve(opts)
		nm = c
		header = c.String()
	}
	if err != nil {
		return 2, err
	}
	defer srv.Close()

	queueCap := *queue
	if queueCap <= 0 {
		queueCap = 64
	}
	mux := newHandler(srv, nm, reg, queueCap)
	fmt.Fprintf(out, "# %s; serving routes on %s\n", header, *listen)
	return 0, http.ListenAndServe(*listen, mux)
}

// routeJSON is the wire form of one route result.
type routeJSON struct {
	Src       string   `json:"src"`
	Dst       string   `json:"dst"`
	Outcome   string   `json:"outcome"`
	Condition string   `json:"condition"`
	Distance  int      `json:"distance"`
	Hops      int      `json:"hops"`
	Path      []string `json:"path,omitempty"`
	Err       string   `json:"err,omitempty"`
}

func routeWire(r *safecube.Route, nm naming) routeJSON {
	out := routeJSON{
		Src:       nm.Format(r.Source),
		Dst:       nm.Format(r.Dest),
		Outcome:   r.Outcome.String(),
		Condition: r.Condition.String(),
		Distance:  r.Hamming,
		Hops:      r.Hops(),
	}
	for _, a := range r.Path {
		out.Path = append(out.Path, nm.Format(a))
	}
	if r.Err != nil {
		out.Err = r.Err.Error()
	}
	return out
}

// newHandler builds the serving mux on top of the registry's /metrics
// and /vars exposition.
func newHandler(srv *safecube.Server, nm naming, reg *safecube.Registry, queueCap int) http.Handler {
	mux := reg.Mux()

	node := func(w http.ResponseWriter, r *http.Request, key string) (safecube.NodeID, bool) {
		v := r.URL.Query().Get(key)
		if v == "" {
			httpErr(w, http.StatusBadRequest, fmt.Errorf("missing %q parameter", key))
			return 0, false
		}
		a, err := nm.Parse(v)
		if err != nil {
			httpErr(w, http.StatusBadRequest, err)
			return 0, false
		}
		return a, true
	}

	mux.HandleFunc("/route", func(w http.ResponseWriter, r *http.Request) {
		src, ok := node(w, r, "src")
		if !ok {
			return
		}
		dst, ok := node(w, r, "dst")
		if !ok {
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"generation": srv.Generation(),
			"route":      routeWire(srv.Unicast(src, dst), nm),
		})
	})

	mux.HandleFunc("/batch", func(w http.ResponseWriter, r *http.Request) {
		raw := r.URL.Query().Get("pairs")
		if raw == "" {
			httpErr(w, http.StatusBadRequest, errors.New(`missing "pairs" parameter (want "SRC-DST,SRC-DST,...")`))
			return
		}
		var pairs []safecube.TrafficPair
		for _, item := range splitList(raw) {
			ab := strings.SplitN(item, "-", 2)
			if len(ab) != 2 {
				httpErr(w, http.StatusBadRequest, fmt.Errorf("bad pair %q, want SRC-DST", item))
				return
			}
			src, err := nm.Parse(ab[0])
			if err != nil {
				httpErr(w, http.StatusBadRequest, err)
				return
			}
			dst, err := nm.Parse(ab[1])
			if err != nil {
				httpErr(w, http.StatusBadRequest, err)
				return
			}
			pairs = append(pairs, safecube.TrafficPair{Src: src, Dst: dst})
		}
		routes := srv.BatchUnicast(pairs)
		wire := make([]routeJSON, len(routes))
		for i, rt := range routes {
			wire[i] = routeWire(rt, nm)
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"generation": srv.Generation(),
			"routes":     wire,
		})
	})

	mux.HandleFunc("/routeall", func(w http.ResponseWriter, r *http.Request) {
		src, ok := node(w, r, "src")
		if !ok {
			return
		}
		all := srv.RouteAll(src)
		wire := make([]routeJSON, 0, len(all)-1)
		delivered := 0
		for _, rt := range all {
			if rt == nil {
				continue
			}
			if rt.Outcome != safecube.Failure {
				delivered++
			}
			wire = append(wire, routeWire(rt, nm))
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"generation": srv.Generation(),
			"delivered":  delivered,
			"routes":     wire,
		})
	})

	mux.HandleFunc("/fault", func(w http.ResponseWriter, r *http.Request) {
		op := r.URL.Query().Get("op")
		a, ok := node(w, r, "a")
		if !ok {
			return
		}
		var err error
		switch op {
		case "fail-node":
			err = srv.FailNode(a)
		case "recover-node":
			err = srv.RecoverNode(a)
		case "fail-link", "recover-link":
			b, ok := node(w, r, "b")
			if !ok {
				return
			}
			if op == "fail-link" {
				err = srv.FailLink(a, b)
			} else {
				err = srv.RecoverLink(a, b)
			}
		default:
			httpErr(w, http.StatusBadRequest,
				fmt.Errorf("bad op %q, want fail-node, recover-node, fail-link or recover-link", op))
			return
		}
		if err != nil {
			httpErr(w, http.StatusUnprocessableEntity, err)
			return
		}
		// 202: churn is asynchronous; the generation advances on publish.
		writeJSON(w, http.StatusAccepted, map[string]any{
			"queued":      true,
			"generation":  srv.Generation(),
			"queue_depth": srv.QueueDepth(),
		})
	})

	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"generation":  srv.Generation(),
			"queue_depth": srv.QueueDepth(),
			"queue_cap":   queueCap,
			"nodes":       nm.Nodes(),
		})
	})

	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func httpErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// splitList splits a comma-separated value, trimming blanks.
func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
