package main

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	safecube "repro"
)

// flightServer builds the full handler over the paper's deterministic
// suboptimal scenario: Q4 with 0001 and 0010 faulty, so 0000 -> 0011
// (H = 2) admits under C3 and takes a spare-dimension detour.
func flightServer(t *testing.T) *httptest.Server {
	t.Helper()
	c := safecube.MustNew(4)
	if err := c.FailNamed("0001", "0010"); err != nil {
		t.Fatal(err)
	}
	reg := safecube.NewRegistry()
	srv, err := c.Serve(safecube.ServeOptions{QueueDepth: 8, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newHandler(srv, c, reg, handlerOpts{queueCap: 8}))
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return ts
}

func getBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// TestFlightEndToEnd is the acceptance scenario for the flight
// recorder: route a known non-minimal request over HTTP, then retrieve
// the same request — by ID — from /debug/incidents with its safety-level
// case sequence, and find the latency exemplar pointing at it.
func TestFlightEndToEnd(t *testing.T) {
	ts := flightServer(t)

	// The request reports its flight ID and suboptimal outcome.
	v := getJSON(t, ts.URL+"/route?src=0000&dst=0011", http.StatusOK)
	rid := uint64(v["request_id"].(float64))
	if rid == 0 {
		t.Fatal("/route returned no request_id")
	}
	route := v["route"].(map[string]any)
	if route["outcome"] != "suboptimal" || route["condition"] != "C3" {
		t.Fatalf("route = %v/%v, want C3/suboptimal", route["condition"], route["outcome"])
	}

	// The non-minimal route was promoted: /debug/incidents holds it with
	// the full per-hop trace.
	inc := getJSON(t, ts.URL+"/debug/incidents", http.StatusOK)
	if inc["total"].(float64) < 1 {
		t.Fatal("no incidents after a suboptimal route")
	}
	var found map[string]any
	for _, raw := range inc["incidents"].([]any) {
		i := raw.(map[string]any)
		if rec := i["record"].(map[string]any); uint64(rec["id"].(float64)) == rid {
			found = i
			break
		}
	}
	if found == nil {
		t.Fatalf("request %d not in /debug/incidents", rid)
	}
	if found["reason"] != "non-minimal" {
		t.Errorf("reason = %v, want non-minimal", found["reason"])
	}
	rec := found["record"].(map[string]any)
	if rec["cond"] != "C3" || rec["outcome"] != "suboptimal" {
		t.Errorf("record cond/outcome = %v/%v, want C3/suboptimal", rec["cond"], rec["outcome"])
	}
	if rec["hops"].(float64) != 4 || rec["hamming"].(float64) != 2 || rec["detours"].(float64) != 1 {
		t.Errorf("record triple = %v/%v/%v, want hops 4 hamming 2 detours 1",
			rec["hops"], rec["hamming"], rec["detours"])
	}
	trace, ok := found["trace"].(map[string]any)
	if !ok {
		t.Fatal("incident carries no trace")
	}
	if uint64(trace["request_id"].(float64)) != rid {
		t.Errorf("trace request_id = %v, want %d", trace["request_id"], rid)
	}
	events := trace["events"].([]any)
	admit := events[0].(map[string]any)
	if admit["kind"].(float64) != 0 || admit["cond"] != "C3" {
		t.Errorf("first trace event = %v, want a C3 admission", admit)
	}
	spare := false
	for _, raw := range events {
		if ev := raw.(map[string]any); ev["spare"] == true {
			spare = true
		}
	}
	if !spare {
		t.Error("trace shows no spare-dimension hop on a suboptimal route")
	}

	// The latency histogram exemplar points back at the request ID.
	metrics := getBody(t, ts.URL+"/metrics")
	if !strings.Contains(metrics, "latency_route_us_exemplar{le=") {
		t.Fatalf("/metrics has no latency exemplar series:\n%s", metrics[:min(len(metrics), 2000)])
	}
	exemplarHit := false
	for _, line := range strings.Split(metrics, "\n") {
		if strings.Contains(line, "latency_route_us_exemplar{le=") &&
			strings.HasSuffix(line, fmt.Sprintf(" %d", rid)) {
			exemplarHit = true
		}
	}
	if !exemplarHit {
		t.Errorf("no latency_route_us exemplar equals request %d", rid)
	}

	// The new gauges are exposed.
	for _, g := range []string{"serve_snapshot_age_us", "serve_repair_lag_gens", "serve_apply_queue_hwm", "flight_records_total"} {
		if !strings.Contains(metrics, g) {
			t.Errorf("/metrics missing %s", g)
		}
	}
}

// TestFlightEndpointFormats covers the /debug/flight surface: JSON
// shape, limit handling, and the text renderers.
func TestFlightEndpointFormats(t *testing.T) {
	ts := flightServer(t)
	for i := 0; i < 3; i++ {
		getJSON(t, ts.URL+"/route?src=0000&dst=1111", http.StatusOK)
	}

	v := getJSON(t, ts.URL+"/debug/flight", http.StatusOK)
	if v["issued"].(float64) < 3 {
		t.Fatalf("issued = %v, want >= 3", v["issued"])
	}
	if recs := v["records"].([]any); len(recs) < 3 {
		t.Fatalf("retained %d records, want >= 3", len(recs))
	} else if id := recs[0].(map[string]any)["id"].(float64); id == 0 {
		t.Fatal("newest record has no ID")
	}
	if got := getJSON(t, ts.URL+"/debug/flight?limit=2", http.StatusOK); len(got["records"].([]any)) != 2 {
		t.Fatalf("limit=2 returned %d records", len(got["records"].([]any)))
	}
	getJSON(t, ts.URL+"/debug/flight?limit=banana", http.StatusBadRequest)
	getJSON(t, ts.URL+"/debug/flight?limit=-1", http.StatusBadRequest)

	text := getBody(t, ts.URL+"/debug/flight?format=text")
	if !strings.HasPrefix(text, "flight:") || !strings.Contains(text, "kind") {
		t.Fatalf("text rendering malformed:\n%s", text)
	}
	itext := getBody(t, ts.URL+"/debug/incidents?format=text")
	if !strings.HasPrefix(itext, "incidents:") {
		t.Fatalf("incident text rendering malformed:\n%s", itext)
	}
}

// TestFlightDisabledEndpoints: with the recorder off the endpoints stay
// mounted and return empty snapshots rather than erroring.
func TestFlightDisabledEndpoints(t *testing.T) {
	ts, _ := testServerOpts(t,
		safecube.ServeOptions{QueueDepth: 8, NoFlight: true},
		handlerOpts{queueCap: 8})
	getJSON(t, ts.URL+"/route?src=0000&dst=1111", http.StatusOK)
	v := getJSON(t, ts.URL+"/debug/flight", http.StatusOK)
	if v["issued"].(float64) != 0 || len(v["records"].([]any)) != 0 {
		t.Fatalf("disabled recorder reported activity: %v", v)
	}
	inc := getJSON(t, ts.URL+"/debug/incidents", http.StatusOK)
	if inc["total"].(float64) != 0 {
		t.Fatalf("disabled recorder reported incidents: %v", inc)
	}
}
