package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestVizFig4(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{
		"-n", "4", "-faults", "0000,0100,1100,1110", "-links", "1000-1001",
		"-from", "1101", "-to", "1000",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"stabilized in 2 rounds",
		"!0/1", "!0/2", // the two N2 cells
		"outcome=suboptimal",
		"hop 1: 1101 -> 1111",
		"spare",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestVizRandomAndErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-n", "5", "-random", "4", "-seed", "9"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Gray order") {
		t.Error("legend missing")
	}
	for _, args := range [][]string{
		{"-n", "0"},
		{"-n", "4", "-faults", "zz"},
		{"-n", "4", "-links", "0000"},
		{"-n", "4", "-links", "0000-1111"},
		{"-n", "4", "-from", "zz", "-to", "0001"},
		{"-n", "4", "-from", "0000", "-to", "zz"},
		{"-n", "4", "-random", "999"},
		{"-nope"},
	} {
		if err := run(args, &bytes.Buffer{}); err == nil {
			t.Errorf("args %v should fail", args)
		}
	}
}
