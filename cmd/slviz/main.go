// Command slviz draws the safety levels of a faulty hypercube as a
// Karnaugh-style Gray-code grid (adjacent cells are one hop apart) and,
// optionally, annotates a routed unicast hop by hop.
//
// Usage:
//
//	slviz -n 4 -faults 0011,0100,0110,1001
//	slviz -n 4 -faults 0000,0100,1100,1110 -links 1000-1001 -from 1101 -to 1000
//	slviz -n 6 -random 8 -seed 3 -from 000000 -to 111111
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/expt"
	"repro/internal/faults"
	"repro/internal/stats"
	"repro/internal/topo"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "slviz:", err)
		os.Exit(2)
	}
}

// run executes one invocation; split from main so the CLI is testable.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("slviz", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	n := fs.Int("n", 4, "cube dimension (grid stays readable up to ~8)")
	faultList := fs.String("faults", "", "comma-separated faulty node addresses")
	linkList := fs.String("links", "", "comma-separated faulty links, each as addr-addr")
	random := fs.Int("random", 0, "inject this many uniform random faults")
	seed := fs.Uint64("seed", 1, "seed for -random")
	from := fs.String("from", "", "source address for an annotated route")
	to := fs.String("to", "", "destination address for an annotated route")
	if err := fs.Parse(args); err != nil {
		return err
	}

	c, err := topo.NewCube(*n)
	if err != nil {
		return err
	}
	set := faults.NewSet(c)
	for _, a := range splitList(*faultList) {
		id, err := c.Parse(a)
		if err != nil {
			return err
		}
		if err := set.FailNode(id); err != nil {
			return err
		}
	}
	for _, l := range splitList(*linkList) {
		ends := strings.SplitN(l, "-", 2)
		if len(ends) != 2 {
			return fmt.Errorf("bad link %q, want addr-addr", l)
		}
		a, err := c.Parse(ends[0])
		if err != nil {
			return err
		}
		b, err := c.Parse(ends[1])
		if err != nil {
			return err
		}
		if err := set.FailLink(a, b); err != nil {
			return err
		}
	}
	if *random > 0 {
		if err := faults.InjectUniform(set, stats.NewRNG(*seed), *random); err != nil {
			return err
		}
	}

	as := core.Compute(set, core.Options{})
	fmt.Fprintf(out, "Q%d, faults %s, stabilized in %d rounds\n\n", *n, set, as.Rounds())
	expt.RenderLevelMap(out, as)

	if *from != "" && *to != "" {
		src, err := c.Parse(*from)
		if err != nil {
			return err
		}
		dst, err := c.Parse(*to)
		if err != nil {
			return err
		}
		fmt.Fprintln(out)
		r := core.NewRouter(as, nil).Unicast(src, dst)
		expt.RenderRoute(out, as, r)
	}
	return nil
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
