package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	safecube "repro"
)

func TestParseMix(t *testing.T) {
	m, err := parseMix("route:8, batch:1 ,routeall:1")
	if err != nil {
		t.Fatal(err)
	}
	if m.Route != 8 || m.Batch != 1 || m.RouteAll != 1 {
		t.Fatalf("mix %+v", m)
	}
	if m, err = parseMix("route"); err != nil || m.Route != 1 {
		t.Fatalf("bare kind: %+v, %v", m, err)
	}
	for _, bad := range []string{"explode:1", "route:x", "route:-1", ""} {
		if _, err := parseMix(bad); err == nil {
			t.Errorf("parseMix(%q) accepted", bad)
		}
	}
}

// TestRunInProcess: a tiny in-process run with churn writes a valid
// report and honors -min-ok in both directions.
func TestRunInProcess(t *testing.T) {
	out := filepath.Join(t.TempDir(), "report.json")
	code := run([]string{
		"-n", "6", "-workers", "2", "-duration", "100ms", "-warmup", "10ms",
		"-mix", "route:8,batch:1,routeall:1", "-batch", "4",
		"-churn", "5ms", "-victims", "4", "-faults", "2",
		"-min-ok", "1", "-o", out,
	}, os.Stdout, os.Stderr)
	if code != 0 {
		t.Fatalf("exit %d, want 0", code)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep map[string]any
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("bad report JSON: %v", err)
	}
	lat, _ := rep["latency"].(map[string]any)
	if lat == nil || lat["count"].(float64) <= 0 {
		t.Fatalf("report has no latency digest: %v", rep)
	}
	if rep["churn_events"].(float64) <= 0 {
		t.Fatal("report recorded no churn events")
	}

	// An unreachable -min-ok fails the run.
	code = run([]string{
		"-n", "4", "-workers", "1", "-duration", "20ms", "-warmup", "0s",
		"-min-ok", "1000000000",
	}, os.Stdout, os.Stderr)
	if code != 1 {
		t.Fatalf("exit %d, want 1 for unmet -min-ok", code)
	}
}

// TestRunScenario: -scenario replays the full seeded schedule in-process
// (paced by -churn, remainder drained at window close) and reports the
// profile label.
func TestRunScenario(t *testing.T) {
	out := filepath.Join(t.TempDir(), "report.json")
	code := run([]string{
		"-n", "5", "-workers", "2", "-duration", "80ms", "-warmup", "0s",
		"-scenario", "rolling", "-waves", "1", "-seed", "7",
		"-min-ok", "1", "-o", out,
	}, os.Stdout, os.Stderr)
	if code != 0 {
		t.Fatalf("exit %d, want 0", code)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep map[string]any
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("bad report JSON: %v", err)
	}
	cfg, _ := rep["config"].(map[string]any)
	if cfg == nil || cfg["Scenario"] != "rolling" {
		t.Fatalf("report config lacks scenario label: %v", cfg)
	}
	// One rolling wave over Q5 fails and recovers every node once.
	if got := rep["churn_events"].(float64); got != 64 {
		t.Fatalf("replayed %v events, want 64 (2 * 32 nodes)", got)
	}
	if errs := rep["churn_errors"].(float64); errs != 0 {
		t.Fatalf("%v schedule events failed", errs)
	}

	// An unknown profile is a usage error.
	devnull, _ := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	defer devnull.Close()
	if code := run([]string{"-scenario", "explode"}, devnull, devnull); code != 2 {
		t.Fatalf("unknown scenario exit %d, want 2", code)
	}
}

// TestRunScenarioDiagnosed: -diagnosed swaps the declared schedule for
// the syndrome-diagnosed one. Within the bound the two are identical,
// so the run replays the same event count with zero errors; past the
// bound (a default-width subcube on Q6) the decode is ambiguous and the
// run refuses up front.
func TestRunScenarioDiagnosed(t *testing.T) {
	out := filepath.Join(t.TempDir(), "report.json")
	code := run([]string{
		"-n", "5", "-workers", "2", "-duration", "80ms", "-warmup", "0s",
		"-scenario", "rolling", "-waves", "1", "-seed", "7",
		"-diagnosed", "-adversary", "invert",
		"-min-ok", "1", "-o", out,
	}, os.Stdout, os.Stderr)
	if code != 0 {
		t.Fatalf("exit %d, want 0", code)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep map[string]any
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("bad report JSON: %v", err)
	}
	if got := rep["churn_events"].(float64); got != 64 {
		t.Fatalf("diagnosed replay drove %v events, want 64", got)
	}
	if errs := rep["churn_errors"].(float64); errs != 0 {
		t.Fatalf("%v diagnosed schedule events failed", errs)
	}

	devnull, _ := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	defer devnull.Close()
	if code := run([]string{
		"-n", "6", "-duration", "20ms", "-warmup", "0s",
		"-scenario", "subcube", "-diagnosed",
	}, devnull, devnull); code != 2 {
		t.Fatalf("beyond-bound diagnosed run exit %d, want 2", code)
	}
	if code := run([]string{
		"-n", "5", "-scenario", "rolling", "-diagnosed", "-adversary", "liar",
	}, devnull, devnull); code != 2 {
		t.Fatalf("bad adversary exit %d, want 2", code)
	}
}

// TestRunWire drives a real wire server over loopback: a plain seeded
// run with the full mix under -only-ok, then a coalesced run replaying
// a correlated-fault scenario as OpFaultDelta frames — the same two
// passes `make wire-smoke` gates in CI, shrunk to test budget.
func TestRunWire(t *testing.T) {
	c, err := safecube.New(6)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.InjectRandomFaults(3, 4); err != nil {
		t.Fatal(err)
	}
	srv, err := c.Serve(safecube.ServeOptions{NoFlight: true})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ws, err := srv.ServeWire("127.0.0.1:0", safecube.WireOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer ws.Close()

	out := filepath.Join(t.TempDir(), "report.json")
	code := run([]string{
		"-wire", ws.Addr(), "-n", "6", "-seed", "7",
		"-workers", "4", "-duration", "150ms", "-warmup", "20ms",
		"-mix", "route:8,batch:1,routeall:1", "-batch", "4",
		"-deadline", "2s", "-min-ok", "50", "-only-ok", "-o", out,
	}, os.Stdout, os.Stderr)
	if code != 0 {
		t.Fatalf("plain wire run exit %d, want 0", code)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep map[string]any
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("bad report JSON: %v", err)
	}
	classes, _ := rep["classes"].(map[string]any)
	if len(classes) != 1 || classes["ok"].(float64) < 50 {
		t.Fatalf("-only-ok run finished with classes %v", classes)
	}

	code = run([]string{
		"-wire", ws.Addr(), "-n", "6", "-seed", "7", "-coalesce", "4",
		"-workers", "4", "-duration", "150ms", "-warmup", "20ms",
		"-scenario", "flap", "-deadline", "2s",
		"-min-ok", "50", "-only-ok", "-o", out,
	}, os.Stdout, os.Stderr)
	if code != 0 {
		t.Fatalf("coalesced scenario run exit %d, want 0", code)
	}
	if raw, err = os.ReadFile(out); err != nil {
		t.Fatal(err)
	}
	rep = map[string]any{}
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("bad report JSON: %v", err)
	}
	if rep["churn_events"].(float64) <= 0 {
		t.Fatal("scenario replay streamed no fault-delta frames")
	}
	if rep["churn_errors"].(float64) != 0 {
		t.Fatalf("%v fault-delta frames failed", rep["churn_errors"])
	}

	// The first pool connection dials eagerly, so an unreachable wire
	// address is a startup error, not a run full of failures.
	devnull, _ := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	defer devnull.Close()
	if code := run([]string{"-wire", "127.0.0.1:1", "-n", "6"}, devnull, devnull); code != 2 {
		t.Fatalf("dead wire address exit %d, want 2", code)
	}
}

func TestRunUsageErrors(t *testing.T) {
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	for _, argv := range [][]string{
		{"-mix", "explode:1"},
		{"-n", "0"},
		{"-explode"},
	} {
		if code := run(argv, devnull, devnull); code != 2 {
			t.Fatalf("run(%v) exit %d, want 2", argv, code)
		}
	}
}
