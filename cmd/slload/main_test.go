package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestParseMix(t *testing.T) {
	m, err := parseMix("route:8, batch:1 ,routeall:1")
	if err != nil {
		t.Fatal(err)
	}
	if m.Route != 8 || m.Batch != 1 || m.RouteAll != 1 {
		t.Fatalf("mix %+v", m)
	}
	if m, err = parseMix("route"); err != nil || m.Route != 1 {
		t.Fatalf("bare kind: %+v, %v", m, err)
	}
	for _, bad := range []string{"explode:1", "route:x", "route:-1", ""} {
		if _, err := parseMix(bad); err == nil {
			t.Errorf("parseMix(%q) accepted", bad)
		}
	}
}

// TestRunInProcess: a tiny in-process run with churn writes a valid
// report and honors -min-ok in both directions.
func TestRunInProcess(t *testing.T) {
	out := filepath.Join(t.TempDir(), "report.json")
	code := run([]string{
		"-n", "6", "-workers", "2", "-duration", "100ms", "-warmup", "10ms",
		"-mix", "route:8,batch:1,routeall:1", "-batch", "4",
		"-churn", "5ms", "-victims", "4", "-faults", "2",
		"-min-ok", "1", "-o", out,
	}, os.Stdout, os.Stderr)
	if code != 0 {
		t.Fatalf("exit %d, want 0", code)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep map[string]any
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("bad report JSON: %v", err)
	}
	lat, _ := rep["latency"].(map[string]any)
	if lat == nil || lat["count"].(float64) <= 0 {
		t.Fatalf("report has no latency digest: %v", rep)
	}
	if rep["churn_events"].(float64) <= 0 {
		t.Fatal("report recorded no churn events")
	}

	// An unreachable -min-ok fails the run.
	code = run([]string{
		"-n", "4", "-workers", "1", "-duration", "20ms", "-warmup", "0s",
		"-min-ok", "1000000000",
	}, os.Stdout, os.Stderr)
	if code != 1 {
		t.Fatalf("exit %d, want 1 for unmet -min-ok", code)
	}
}

// TestRunScenario: -scenario replays the full seeded schedule in-process
// (paced by -churn, remainder drained at window close) and reports the
// profile label.
func TestRunScenario(t *testing.T) {
	out := filepath.Join(t.TempDir(), "report.json")
	code := run([]string{
		"-n", "5", "-workers", "2", "-duration", "80ms", "-warmup", "0s",
		"-scenario", "rolling", "-waves", "1", "-seed", "7",
		"-min-ok", "1", "-o", out,
	}, os.Stdout, os.Stderr)
	if code != 0 {
		t.Fatalf("exit %d, want 0", code)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep map[string]any
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("bad report JSON: %v", err)
	}
	cfg, _ := rep["config"].(map[string]any)
	if cfg == nil || cfg["Scenario"] != "rolling" {
		t.Fatalf("report config lacks scenario label: %v", cfg)
	}
	// One rolling wave over Q5 fails and recovers every node once.
	if got := rep["churn_events"].(float64); got != 64 {
		t.Fatalf("replayed %v events, want 64 (2 * 32 nodes)", got)
	}
	if errs := rep["churn_errors"].(float64); errs != 0 {
		t.Fatalf("%v schedule events failed", errs)
	}

	// An unknown profile is a usage error.
	devnull, _ := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	defer devnull.Close()
	if code := run([]string{"-scenario", "explode"}, devnull, devnull); code != 2 {
		t.Fatalf("unknown scenario exit %d, want 2", code)
	}
}

func TestRunUsageErrors(t *testing.T) {
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	for _, argv := range [][]string{
		{"-mix", "explode:1"},
		{"-n", "0"},
		{"-explode"},
	} {
		if code := run(argv, devnull, devnull); code != 2 {
			t.Fatalf("run(%v) exit %d, want 2", argv, code)
		}
	}
}
