// Command slload is the deterministic load generator for the serving
// stack: it drives either a remote slserve (-target URL) or an
// in-process serving engine (-n DIM) with a seeded request mix, an
// optional churn storm, closed- or open-loop pacing, and prints an
// HDR-style JSON latency report.
//
// Usage:
//
//	slload [flags]
//
// Target selection:
//
//	-target URL   drive a running slserve at URL (e.g. http://localhost:8080);
//	              -n must match the server's dimension for address synthesis
//	-wire ADDR    drive a slserve wire-protocol listener (host:port, the
//	              server's -wire-addr) over the binary protocol instead of
//	              HTTP; overrides -target. -n must match the server
//	-wire-conns K wire client connection pool size (0 = max(1, workers/4))
//	-coalesce N   merge concurrent route calls into wire batches of up to
//	              N pairs (0 disables client-side coalescing)
//	-n DIM        hypercube dimension (default 8); without -target this
//	              also builds the in-process engine
//	-faults K     pre-fail K random nodes before the run (in-process only)
//	-srv-rate R   in-process engine admission rate, unicasts/sec (0 = off)
//	-srv-burst B  in-process engine admission burst
//
// Load shape:
//
//	-workers N    concurrent workers (default 8)
//	-rate R       open-loop offered rate in requests/sec across all
//	              workers; 0 (default) means closed loop
//	-duration D   measured window (default 5s)
//	-warmup D     warmup window, excluded from the digest (default 500ms)
//	-deadline D   per-request context deadline (0 = none)
//	-mix SPEC     request mix weights, e.g. route:8,batch:1,routeall:1
//	              (default route:1)
//	-batch N      pairs per batch request (default 16)
//	-seed N       RNG seed; same seed, same offered request stream
//
// Churn storm:
//
//	-churn D      toggle one victim node every D (0 = no churn)
//	-victims K    size of the rotating victim set (default 8)
//	-scenario P   replace the rotating storm with a seeded correlated-fault
//	              scenario (subcube, dimcut, rolling, flap or partition);
//	              the same -seed replays the identical schedule against a
//	              local engine or a remote -target. Paced by -churn, or
//	              spread evenly across the run when -churn is 0
//	-waves N      scenario wave count (0 = generator default)
//	-subdim K     scenario subcube dimension (0 = generator default)
//	-diagnosed    run the -scenario schedule through PMC syndrome
//	              diagnosis (internal/diagnose.ReplaySchedule) and drive
//	              the target with the DIAGNOSED schedule instead of the
//	              declared one; exits 2 if any step decodes ambiguous
//	              (fault count past the diagnosability bound — keep the
//	              profile's simultaneous node faults within -n)
//	-adversary P  faulty-tester policy for -diagnosed: truthful,
//	              stealth, slander, invert or random (default invert)
//
// Output:
//
//	-o FILE       write the JSON report to FILE instead of stdout
//	-min-ok N     exit 1 unless at least N requests completed OK
//	              (the CI smoke gate)
//	-only-ok      exit 1 if ANY request finished in a non-OK class
//	              (the wire-smoke digest gate)
//	-flight       after the run, print the target's flight-recorder
//	              summary (records and incidents) to stderr; against a
//	              -target it scrapes /debug/flight and /debug/incidents
//
// Exit status: 0 on success, 1 if -min-ok is not met, 2 on usage or
// setup errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/diagnose"
	"repro/internal/faults"
	"repro/internal/loadgen"
	"repro/internal/serve"
	"repro/internal/stats"
	"repro/internal/topo"
	"repro/internal/wire"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(argv []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("slload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		target   = fs.String("target", "", "slserve base URL; empty runs an in-process engine")
		wireAddr = fs.String("wire", "", "slserve wire-protocol address (host:port); overrides -target")
		conns    = fs.Int("wire-conns", 0, "wire client connection pool size (0 means max(1, workers/4))")
		coalesce = fs.Int("coalesce", 0, "coalesce concurrent route calls into wire batches of up to N pairs (0 disables)")
		dim      = fs.Int("n", 8, "hypercube dimension")
		nFaults  = fs.Int("faults", 0, "pre-failed random nodes (in-process only)")
		srvRate  = fs.Float64("srv-rate", 0, "in-process admission rate, unicasts/sec (0 = off)")
		srvBurst = fs.Int("srv-burst", 0, "in-process admission burst")

		workers  = fs.Int("workers", 8, "concurrent workers")
		rate     = fs.Float64("rate", 0, "open-loop offered rate, req/sec (0 = closed loop)")
		duration = fs.Duration("duration", 5*time.Second, "measured window")
		warmup   = fs.Duration("warmup", 500*time.Millisecond, "warmup window")
		deadline = fs.Duration("deadline", 0, "per-request deadline (0 = none)")
		mixSpec  = fs.String("mix", "route:1", "request mix, e.g. route:8,batch:1,routeall:1")
		batch    = fs.Int("batch", 16, "pairs per batch request")
		seed     = fs.Uint64("seed", 1, "RNG seed")

		churn   = fs.Duration("churn", 0, "churn-storm toggle interval (0 = off)")
		victims = fs.Int("victims", 8, "churn victim set size")

		scenario  = fs.String("scenario", "", "replay a seeded correlated-fault scenario: subcube, dimcut, rolling, flap or partition")
		waves     = fs.Int("waves", 0, "scenario wave count (0 = generator default)")
		subdim    = fs.Int("subdim", 0, "scenario subcube dimension (0 = generator default)")
		diagnosed = fs.Bool("diagnosed", false, "drive the -scenario schedule through PMC syndrome diagnosis instead of declared faults")
		adversary = fs.String("adversary", "", "faulty-tester policy for -diagnosed (default invert)")

		out    = fs.String("o", "", "write JSON report to FILE (default stdout)")
		minOK  = fs.Int64("min-ok", 0, "exit 1 unless at least this many requests completed OK")
		onlyOK = fs.Bool("only-ok", false, "exit 1 if any request finished in a non-OK class")
		flight = fs.Bool("flight", false, "after the run, print the target's flight-recorder summary to stderr")
	)
	if err := fs.Parse(argv); err != nil {
		return 2
	}

	mix, err := parseMix(*mixSpec)
	if err != nil {
		fmt.Fprintln(stderr, "slload:", err)
		return 2
	}

	cube, err := topo.NewCube(*dim)
	if err != nil {
		fmt.Fprintln(stderr, "slload:", err)
		return 2
	}

	cfg := loadgen.Config{
		Seed:         *seed,
		Workers:      *workers,
		Rate:         *rate,
		Duration:     *duration,
		Warmup:       *warmup,
		Deadline:     *deadline,
		Mix:          mix,
		BatchSize:    *batch,
		ChurnEvery:   *churn,
		ChurnVictims: *victims,
	}
	if *scenario != "" {
		prof, err := faults.ParseScenarioProfile(*scenario)
		if err != nil {
			fmt.Fprintln(stderr, "slload:", err)
			return 2
		}
		sched, err := faults.ScenarioSchedule(cube, prof, *seed, faults.ScenarioOptions{
			Waves:  *waves,
			Subdim: *subdim,
		})
		if err != nil {
			fmt.Fprintln(stderr, "slload:", err)
			return 2
		}
		if *diagnosed {
			adv, err := diagnose.ParseAdversary(*adversary)
			if err != nil {
				fmt.Fprintln(stderr, "slload:", err)
				return 2
			}
			sched, err = diagnose.ReplaySchedule(cube, sched, diagnose.ReplayOptions{
				Seed:      *seed,
				Adversary: adv,
			})
			if err != nil {
				fmt.Fprintln(stderr, "slload:", err)
				return 2
			}
		}
		cfg.Schedule = sched
		cfg.Scenario = *scenario
	}

	var tgt loadgen.Target
	var localSvc *serve.Service
	if *wireAddr != "" {
		nc := *conns
		if nc <= 0 {
			nc = max(1, *workers/4)
		}
		cl, err := wire.Dial(*wireAddr, wire.ClientOptions{Conns: nc})
		if err != nil {
			fmt.Fprintln(stderr, "slload:", err)
			return 2
		}
		defer cl.Close()
		wt := loadgen.WireTarget{Client: cl, N: cube.Nodes()}
		if *coalesce > 0 {
			co := wire.NewCoalescer(cl, wire.CoalescerOptions{
				MaxBatch: *coalesce,
				Deadline: *deadline,
			})
			defer co.Close()
			wt.Coalescer = co
		}
		tgt = wt
	} else if *target != "" {
		tgt = loadgen.HTTPTarget{
			Base:   *target,
			N:      cube.Nodes(),
			Format: func(a int) string { return cube.Format(topo.NodeID(a)) },
		}
	} else {
		set := faults.NewSet(cube)
		if *nFaults > 0 {
			if err := faults.InjectUniform(set, stats.NewRNG(*seed).Split(0xFA17), *nFaults); err != nil {
				fmt.Fprintln(stderr, "slload:", err)
				return 2
			}
		}
		svc, err := serve.New(set, serve.Options{
			QueueDepth: 256,
			Rate:       *srvRate,
			Burst:      *srvBurst,
		})
		if err != nil {
			fmt.Fprintln(stderr, "slload:", err)
			return 2
		}
		defer svc.Close()
		localSvc = svc
		tgt = loadgen.LocalTarget{Svc: svc}
	}

	rep := loadgen.Run(tgt, cfg)

	enc := json.NewEncoder(stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(stderr, "slload:", err)
			return 2
		}
		defer f.Close()
		enc = json.NewEncoder(f)
	}
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(stderr, "slload:", err)
		return 2
	}

	fmt.Fprintf(stderr, "# %s loop: %d ops (%.0f ok/s), classes %v, churn %d, p50 %.0fµs p99 %.0fµs p999 %.0fµs\n",
		rep.Mode, rep.Ops, rep.OKPerSec, rep.Classes, rep.ChurnEvents,
		rep.Latency.P50Us, rep.Latency.P99Us, rep.Latency.P999Us)
	if *scenario != "" {
		label := *scenario
		if *diagnosed {
			label += " (diagnosed)"
		}
		fmt.Fprintf(stderr, "# scenario %s: replayed %d/%d events (%d errors)\n",
			label, rep.ChurnEvents, len(cfg.Schedule), rep.ChurnErrors)
	}

	if *flight {
		if err := printFlight(stderr, localSvc, *target); err != nil {
			fmt.Fprintln(stderr, "slload: flight summary:", err)
		}
	}

	if ok := rep.Classes[loadgen.ClassOK]; ok < *minOK {
		fmt.Fprintf(stderr, "slload: only %d requests completed OK, need %d\n", ok, *minOK)
		return 1
	}
	if *onlyOK {
		for class, n := range rep.Classes {
			if class != loadgen.ClassOK && n > 0 {
				fmt.Fprintf(stderr, "slload: -only-ok violated: %d requests in class %q\n", n, class)
				return 1
			}
		}
	}
	return 0
}

// printFlight reports the flight-recorder state after a run: for an
// in-process engine it reads the recorder directly, for an HTTP target
// it scrapes the slserve /debug endpoints.
func printFlight(stderr *os.File, svc *serve.Service, target string) error {
	if svc != nil {
		fl := svc.Flight()
		if fl == nil {
			fmt.Fprintln(stderr, "# flight: recorder disabled")
			return nil
		}
		snap := fl.Snapshot(0)
		inc := fl.Incidents()
		fmt.Fprintf(stderr, "# flight: %d requests recorded (%d retained), %d incidents (%d retained)\n",
			snap.Issued, len(snap.Records), inc.Total, len(inc.Incidents))
		return nil
	}
	issued, err := fetchCount(target+"/debug/flight?limit=1", "issued")
	if err != nil {
		return err
	}
	total, err := fetchCount(target+"/debug/incidents", "total")
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "# flight: %d requests recorded, %d incidents\n", issued, total)
	return nil
}

// fetchCount GETs a JSON endpoint and returns the named integer field.
func fetchCount(url, field string) (int64, error) {
	resp, err := http.Get(url)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("%s: HTTP %s", url, resp.Status)
	}
	dec := json.NewDecoder(resp.Body)
	dec.UseNumber()
	var body map[string]any
	if err := dec.Decode(&body); err != nil {
		return 0, err
	}
	num, ok := body[field].(json.Number)
	if !ok {
		return 0, fmt.Errorf("%s: missing %q field", url, field)
	}
	n, err := num.Int64()
	if err != nil {
		return 0, fmt.Errorf("%s: bad %q field: %v", url, field, err)
	}
	return n, nil
}

// parseMix parses "route:8,batch:1,routeall:1" into a Mix.
func parseMix(spec string) (loadgen.Mix, error) {
	var m loadgen.Mix
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kind, weight, found := strings.Cut(part, ":")
		w := 1
		if found {
			var err error
			if w, err = strconv.Atoi(strings.TrimSpace(weight)); err != nil || w < 0 {
				return m, fmt.Errorf("bad mix weight %q", part)
			}
		}
		switch strings.TrimSpace(kind) {
		case "route":
			m.Route = w
		case "batch":
			m.Batch = w
		case "routeall":
			m.RouteAll = w
		default:
			return m, fmt.Errorf("unknown mix kind %q (want route, batch, routeall)", kind)
		}
	}
	if m.Route+m.Batch+m.RouteAll == 0 {
		return m, fmt.Errorf("mix %q admits no requests", spec)
	}
	return m, nil
}
