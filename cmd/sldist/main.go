// Command sldist runs the paper's protocols on the goroutine-per-node
// distributed engine: one goroutine per nonfaulty node, channels as
// links. It reports the real communication cost (rounds, messages) of
// the GS status protocol and then routes a batch of random unicasts hop
// by hop, optionally killing nodes between batches to exercise the
// state-change-driven recomputation.
//
// Usage:
//
//	sldist -n 7 -faults 10 -unicasts 50 -kills 2 -seed 7
package main

import (
	"flag"
	"fmt"
	"os"

	safecube "repro"
	"repro/internal/stats"
)

func main() {
	n := flag.Int("n", 7, "cube dimension")
	nFaults := flag.Int("faults", 0, "uniform random node faults")
	unicasts := flag.Int("unicasts", 20, "random unicasts per batch")
	kills := flag.Int("kills", 0, "fail-stop events (each followed by a GS recomputation and another batch)")
	seed := flag.Uint64("seed", 1, "RNG seed")
	async := flag.Bool("async", false, "use the asynchronous GS protocol (quiescence-driven) instead of n-1 synchronous rounds")
	flag.Parse()

	c, err := safecube.New(*n)
	fatal(err)
	if *nFaults > 0 {
		fatal(c.InjectRandomFaults(*seed, *nFaults))
	}
	rng := stats.NewRNG(*seed ^ 0xD15717)

	d := c.Distributed()
	defer d.Close()

	runGS := func() {
		if *async {
			d.RunGSAsync()
		} else {
			d.RunGS()
		}
	}
	runGS()
	fmt.Printf("%s\n", c)
	if *async {
		fmt.Printf("distributed async GS: %d level updates, %d messages\n",
			d.Updates(), d.MessagesSent())
	} else {
		fmt.Printf("distributed GS: stabilized at round %d (bound n-1 = %d), %d messages\n",
			d.StableRound(), *n-1, d.MessagesSent())
	}

	batch := func(label string) {
		delivered, optimal, failed := 0, 0, 0
		hops := 0
		for i := 0; i < *unicasts; i++ {
			src := safecube.NodeID(rng.Intn(c.Nodes()))
			dst := safecube.NodeID(rng.Intn(c.Nodes()))
			if c.NodeFaulty(src) || c.NodeFaulty(dst) || src == dst {
				continue
			}
			r := d.Unicast(src, dst)
			switch r.Outcome {
			case safecube.Failure:
				failed++
			case safecube.Optimal:
				delivered++
				optimal++
				hops += r.Hops()
			default:
				delivered++
				hops += r.Hops()
			}
		}
		avg := 0.0
		if delivered > 0 {
			avg = float64(hops) / float64(delivered)
		}
		fmt.Printf("%s: delivered %d (optimal %d), aborted-at-source %d, avg hops %.2f\n",
			label, delivered, optimal, failed, avg)
	}
	batch("batch 0")

	for k := 1; k <= *kills; k++ {
		var victim safecube.NodeID
		for {
			victim = safecube.NodeID(rng.Intn(c.Nodes()))
			if !c.NodeFaulty(victim) {
				break
			}
		}
		fatal(d.KillNode(victim))
		before := d.MessagesSent()
		runGS()
		fmt.Printf("killed %s; state-change-driven GS recomputation: +%d messages\n",
			c.Format(victim), d.MessagesSent()-before)
		batch(fmt.Sprintf("batch %d", k))
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "sldist:", err)
		os.Exit(2)
	}
}
