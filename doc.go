// Package safecube is a Go implementation of reliable unicasting in
// faulty hypercubes using safety levels (Jie Wu, ICPP 1995 / IEEE TC
// 46(2), 1997).
//
// A Cube models an n-dimensional binary hypercube whose nodes (and,
// optionally, links) can fail. Every nonfaulty node carries a safety
// level in 0..n, computed by the distributed GLOBAL_STATUS (GS)
// algorithm in at most n-1 rounds of neighbor information exchange. A
// node with safety level k is guaranteed a Hamming-distance ("optimal")
// path to every node within distance k (Theorem 2), which yields a
// purely local unicast admission test at the source:
//
//   - C1: S(source) >= H(source, dest)                 -> optimal
//   - C2: a preferred neighbor has level >= H-1        -> optimal
//   - C3: a spare neighbor has level >= H+1            -> suboptimal (H+2)
//   - otherwise the unicast fails, detectably, at the source — which
//     makes the scheme usable even in disconnected hypercubes.
//
// The package offers four execution styles:
//
//   - Cube: sequential model — compute levels, route, inspect paths.
//   - Distributed: goroutine-per-node execution with real message
//     passing (one channel per node), for protocol-cost experiments.
//   - Generalized: the Section 4.2 extension to mixed-radix generalized
//     hypercubes GH(m_{n-1} x ... x m_0).
//   - Server (Cube.Serve / Generalized.Serve): a concurrent serving
//     engine with lock-free snapshot reads, asynchronous churn repair,
//     per-request deadlines, admission control, and graceful drain —
//     see docs/OPERATIONS.md for running it in production.
//
// Faulty links (Section 4.1) are supported on all styles: the two end
// nodes of a faulty link expose safety level 0 to the rest of the cube
// but keep routing with their own level.
//
// Key invariant (Theorem 1): the safety-level fixpoint for a given
// fault set is unique, so every layer of the system — sequential
// compute, incremental repair, distributed exchange, and published
// serving snapshots — must converge to bit-identical level tables; the
// chaos and oracle suites convict any divergence.
package safecube
