package safecube

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/loadgen"
	"repro/internal/serve"
	"repro/internal/stats"
	"repro/internal/topo"
)

// TestEmitBenchJSON5 regenerates BENCH_5.json, the committed tail-latency
// measurement of the hardened serving path under a churn storm. It shares
// the BENCH_1..4 gate:
//
//	EMIT_BENCH_JSON=1 go test -run TestEmitBenchJSON .
//
// The scenario is the one admission control exists for: an open-loop
// client offers routes faster than the engine can serve them while a
// churn storm keeps the applier repairing and swapping snapshots. The
// load generator (internal/loadgen) measures every request from its
// *scheduled* start — the coordinated-omission correction — so
// saturation shows up as it would to a real caller: the backlog grows
// for the whole cell and the tail quantiles climb toward the cell
// length. With token-bucket admission sized below capacity, the excess
// is shed promptly with ErrOverload instead of queueing, and the
// admitted requests keep a flat tail. Both cells replay the identical
// seeded request stream, so the comparison isolates the admission knob.
func TestEmitBenchJSON5(t *testing.T) {
	if os.Getenv("EMIT_BENCH_JSON") == "" {
		t.Skip("set EMIT_BENCH_JSON=1 to regenerate BENCH_5.json")
	}

	const (
		dim           = 12
		initialFaults = 16
		seed          = 99
		workers       = 16
		churnEvery    = time.Millisecond
		victims       = 16
		cell          = 1 * time.Second
		warm          = 300 * time.Millisecond
	)
	tp := topo.MustCube(dim)

	newService := func(rate float64, burst int) *serve.Service {
		set := faults.NewSet(tp)
		if err := faults.InjectUniform(set, stats.NewRNG(42), initialFaults); err != nil {
			t.Fatal(err)
		}
		svc, err := serve.New(set, serve.Options{
			QueueDepth: 256,
			Rate:       rate,
			Burst:      burst,
		})
		if err != nil {
			t.Fatal(err)
		}
		return svc
	}

	// Calibrate: closed-loop throughput under the same churn storm is
	// the capacity the open-loop cells are sized against, so the
	// committed numbers track the machine instead of a hardcoded rate.
	calSvc := newService(0, 0)
	cal := loadgen.Run(loadgen.LocalTarget{Svc: calSvc}, loadgen.Config{
		Seed:         seed,
		Workers:      workers,
		Duration:     400 * time.Millisecond,
		Warmup:       100 * time.Millisecond,
		ChurnEvery:   churnEvery,
		ChurnVictims: victims,
	})
	calSvc.Close()
	capacity := cal.OKPerSec
	if capacity <= 0 {
		t.Fatalf("calibration measured no throughput: %+v", cal)
	}
	offered := 1.5 * capacity
	admitRate := 0.5 * capacity

	type entry struct {
		Name          string           `json:"name"`
		Admission     bool             `json:"admission"`
		OfferedPerSec float64          `json:"offered_per_sec"`
		OKPerSec      float64          `json:"ok_per_sec"`
		Classes       map[string]int64 `json:"classes"`
		ChurnEvents   int64            `json:"churn_events"`
		P50Us         float64          `json:"p50_us"`
		P90Us         float64          `json:"p90_us"`
		P99Us         float64          `json:"p99_us"`
		P999Us        float64          `json:"p999_us"`
		MaxUs         int64            `json:"max_us"`
	}

	storm := func(name string, rate float64, burst int) entry {
		svc := newService(rate, burst)
		defer svc.Close()
		rep := loadgen.Run(loadgen.LocalTarget{Svc: svc}, loadgen.Config{
			Seed:         seed,
			Workers:      workers,
			Rate:         offered,
			Duration:     cell,
			Warmup:       warm,
			ChurnEvery:   churnEvery,
			ChurnVictims: victims,
		})
		return entry{
			Name:          name,
			Admission:     rate > 0,
			OfferedPerSec: offered,
			OKPerSec:      rep.OKPerSec,
			Classes:       rep.Classes,
			ChurnEvents:   rep.ChurnEvents,
			P50Us:         rep.Latency.P50Us,
			P90Us:         rep.Latency.P90Us,
			P99Us:         rep.Latency.P99Us,
			P999Us:        rep.Latency.P999Us,
			MaxUs:         rep.Latency.MaxUs,
		}
	}

	open := storm("open-loop/admission=off", 0, 0)
	shed := storm("open-loop/admission=on", admitRate, 64)

	if shed.Classes["overload"] == 0 {
		t.Errorf("admission cell shed nothing: %v", shed.Classes)
	}
	ratio := open.P99Us / shed.P99Us
	if ratio < 3 {
		t.Errorf("admission kept p99 at %.0fµs vs %.0fµs unprotected (%.1fx), want >= 3x",
			shed.P99Us, open.P99Us, ratio)
	}

	report := struct {
		Config       string  `json:"config"`
		Claim        string  `json:"claim"`
		CapacityPS   float64 `json:"closed_loop_capacity_per_sec"`
		P99RatioOff  float64 `json:"p99_ratio_unprotected_vs_admitted"`
		Calibration  entry   `json:"-"`
		Results      []entry `json:"results"`
		ChurnEvery   string  `json:"churn_every"`
		CoordOmitted bool    `json:"coordinated_omission_corrected"`
	}{
		Config: fmt.Sprintf("Q%d (%d nodes), %d initial faults, churn storm toggling %d victims "+
			"every %s, %d open-loop workers offering 1.5x the measured closed-loop capacity "+
			"(%.0f req/s) for %s after %s warmup, GOMAXPROCS=%d", dim, tp.Nodes(), initialFaults,
			victims, churnEvery, workers, capacity, cell, warm, runtime.GOMAXPROCS(0)),
		Claim: fmt.Sprintf("offered 1.5x capacity under a churn storm, the unprotected engine "+
			"queues the excess and the coordinated-omission-corrected p99 climbs to %.0fµs "+
			"(p999 %.0fµs); with token-bucket admission at 0.5x capacity the excess is shed "+
			"promptly as ErrOverload and the admitted requests hold p99 at %.0fµs — %.0fx "+
			"lower — while still serving %.0f req/s", open.P99Us, open.P999Us, shed.P99Us,
			ratio, shed.OKPerSec),
		CapacityPS:   capacity,
		P99RatioOff:  ratio,
		Results:      []entry{open, shed},
		ChurnEvery:   churnEvery.String(),
		CoordOmitted: true,
	}

	f, err := os.Create("BENCH_5.json")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote BENCH_5.json: p99 %.0fµs unprotected vs %.0fµs admitted (%.1fx)",
		open.P99Us, shed.P99Us, ratio)
}
