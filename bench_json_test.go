package safecube

import (
	"encoding/json"
	"os"
	"testing"
)

// TestEmitBenchJSON regenerates BENCH_1.json, the committed evidence that
// the nil-registry instrumentation path is zero-overhead. It is gated so
// normal test runs stay fast:
//
//	EMIT_BENCH_JSON=1 go test -run TestEmitBenchJSON .
//
// (or `make bench-json`).
func TestEmitBenchJSON(t *testing.T) {
	if os.Getenv("EMIT_BENCH_JSON") == "" {
		t.Skip("set EMIT_BENCH_JSON=1 to regenerate BENCH_1.json")
	}

	type entry struct {
		Name        string  `json:"name"`
		NsPerOp     float64 `json:"ns_per_op"`
		AllocsPerOp int64   `json:"allocs_per_op"`
		BytesPerOp  int64   `json:"bytes_per_op"`
	}
	bench := func(name string, fn func(b *testing.B)) entry {
		r := testing.Benchmark(fn)
		return entry{
			Name:        name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
	}

	unicast := func(reg *Registry) func(b *testing.B) {
		return func(b *testing.B) {
			c, src, dst := newOverheadCube(b, reg)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.Unicast(src, dst)
			}
		}
	}
	gs := func(reg *Registry) func(b *testing.B) {
		return func(b *testing.B) {
			c, toggle, _ := newOverheadCube(b, reg)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := c.FailNode(toggle); err != nil {
					b.Fatal(err)
				}
				if err := c.RecoverNode(toggle); err != nil {
					b.Fatal(err)
				}
				c.ComputeLevels()
			}
		}
	}

	report := struct {
		Config  string  `json:"config"`
		Claim   string  `json:"claim"`
		Results []entry `json:"results"`
	}{
		Config: "Q10 (1024 nodes), 102 random node faults (10%), seed 10",
		Claim: "uninstrumented (registry=nil) unicast and GS cost the same as the " +
			"pre-instrumentation code path: every observer call is a single nil check",
		Results: []entry{
			bench("unicast/registry=nil", unicast(nil)),
			bench("unicast/registry=on", unicast(NewRegistry())),
			bench("gs/registry=nil", gs(nil)),
			bench("gs/registry=on", gs(NewRegistry())),
		},
	}

	f, err := os.Create("BENCH_1.json")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote BENCH_1.json: %+v", report.Results)
}
