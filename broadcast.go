package safecube

import (
	"repro/internal/broadcast"
)

// BroadcastResult reports a safety-level broadcast (see Broadcast).
type BroadcastResult struct {
	Source NodeID
	// Depth maps every covered nonfaulty node to the hop depth at which
	// it received the message (source = 0).
	Depth map[NodeID]int
	// Messages is the number of point-to-point sends the broadcast
	// tree used; RepairMessages counts extra unicast hops.
	Messages       int
	RepairMessages int
	// Rounds is the broadcast latency: the maximum delivery depth.
	Rounds int
	// Missed lists reachable nonfaulty nodes the tree did not cover;
	// Repaired lists those subsequently delivered by unicast fallback.
	Missed, Repaired []NodeID
}

// Covered reports whether every reachable nonfaulty node received the
// message.
func (r *BroadcastResult) Covered() bool {
	return len(r.Missed) == len(r.Repaired)
}

// Broadcast floods a message from s to every reachable nonfaulty node
// using the safety-level-ranked spanning binomial tree (the application
// that originated safety levels — the paper's reference [9]). Subtrees
// are assigned largest-to-safest: when the source is safe the rank-i
// child has level at least i, and across the exhaustive and randomized
// test suites every safe source covered its whole component with the
// tree alone. Nodes the tree misses (possible from unsafe sources) are
// delivered by individual safety-level unicasts, so the combined
// operation covers every reachable node whenever unicast admission
// holds — always, below n faults.
func (c *Cube) Broadcast(s NodeID) *BroadcastResult {
	lv := c.ComputeLevels()
	res := broadcast.New(lv.as, true).Broadcast(s)
	out := &BroadcastResult{
		Source:         res.Source,
		Depth:          make(map[NodeID]int, len(res.Depth)),
		Messages:       res.Messages,
		RepairMessages: res.RepairMessages,
		Rounds:         res.Rounds,
		Missed:         append([]NodeID(nil), res.Missed...),
		Repaired:       append([]NodeID(nil), res.Repaired...),
	}
	for a, d := range res.Depth {
		out.Depth[a] = d
	}
	return out
}
