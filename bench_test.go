package safecube

// One benchmark per reproduced table/figure (DESIGN.md experiment
// index E1–E14), plus scaling micro-benchmarks for the core
// primitives. Regenerate the recorded numbers with:
//
//	go test -bench=. -benchmem .

import (
	"testing"

	"repro/internal/baseline"
	"repro/internal/broadcast"
	"repro/internal/core"
	"repro/internal/expt"
	"repro/internal/faults"
	"repro/internal/ghcube"
	"repro/internal/simnet"
	"repro/internal/stats"
	"repro/internal/topo"
)

// BenchmarkFig1SafetyLevels (E1): GS fixpoint on the Fig. 1 cube.
func BenchmarkFig1SafetyLevels(b *testing.B) {
	s := expt.Fig1Set()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		as := core.Compute(s, core.Options{})
		if as.Rounds() != 2 {
			b.Fatal("unexpected rounds")
		}
	}
}

// BenchmarkFig2Rounds (E2): GS convergence on seven-cubes across the
// figure's fault axis.
func BenchmarkFig2Rounds(b *testing.B) {
	for _, f := range []int{0, 6, 16, 32} {
		b.Run(benchName("faults", f), func(b *testing.B) {
			c := topo.MustCube(7)
			rng := stats.NewRNG(uint64(f) + 1)
			sets := make([]*faults.Set, 16)
			for i := range sets {
				sets[i] = faults.NewSet(c)
				if err := faults.InjectUniform(sets[i], rng, f); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				core.Compute(sets[i%len(sets)], core.Options{})
			}
		})
	}
}

// BenchmarkTable1SafeSets (E3): the three status fixpoints on the
// Section 2.3 comparison cube.
func BenchmarkTable1SafeSets(b *testing.B) {
	s := expt.Section23Set()
	b.Run("safety-level", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.Compute(s, core.Options{})
		}
	})
	b.Run("wu-fernandez", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			baseline.WuFernandez(s)
		}
	})
	b.Run("lee-hayes", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			baseline.LeeHayes(s)
		}
	})
}

// BenchmarkRoundsComparison (E4): status identification cost on a
// heavily-faulted 8-cube, GS vs. the binary definitions.
func BenchmarkRoundsComparison(b *testing.B) {
	c := topo.MustCube(8)
	rng := stats.NewRNG(44)
	s := faults.NewSet(c)
	if err := faults.InjectClustered(s, rng, 24, 4); err != nil {
		b.Fatal(err)
	}
	b.Run("gs", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.Compute(s, core.Options{})
		}
	})
	b.Run("lee-hayes", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			baseline.LeeHayes(s)
		}
	})
	b.Run("wu-fernandez", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			baseline.WuFernandez(s)
		}
	})
}

// BenchmarkFig3Disconnected (E5): admission checks and routing in the
// disconnected Fig. 3 cube.
func BenchmarkFig3Disconnected(b *testing.B) {
	s := expt.Fig3Set()
	c := s.Cube()
	rt := core.NewRouter(core.Compute(s, core.Options{}), nil)
	src, in := c.MustParse("0101"), c.MustParse("0000")
	island := c.MustParse("1110")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if r := rt.Unicast(src, in); r.Outcome != core.Optimal {
			b.Fatal("in-component route should be optimal")
		}
		if r := rt.Unicast(src, island); r.Outcome != core.Failure {
			b.Fatal("cross-partition route should fail")
		}
	}
}

// BenchmarkGuarantee (E6): full compute+route cycle on 8-cubes with
// n-1 faults (the guarantee boundary).
func BenchmarkGuarantee(b *testing.B) {
	c := topo.MustCube(8)
	rng := stats.NewRNG(66)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := faults.NewSet(c)
		if err := faults.InjectUniform(s, rng, 7); err != nil {
			b.Fatal(err)
		}
		rt := core.NewRouter(core.Compute(s, core.Options{}), nil)
		src := topo.NodeID(rng.Intn(c.Nodes()))
		dst := topo.NodeID(rng.Intn(c.Nodes()))
		if s.NodeFaulty(src) || s.NodeFaulty(dst) {
			continue
		}
		if r := rt.Unicast(src, dst); r.Outcome == core.Failure {
			b.Fatal("guarantee violated below n faults")
		}
	}
}

// BenchmarkTheorem4 (E7): disconnected-cube construction plus the
// emptiness checks of both binary safe sets.
func BenchmarkTheorem4(b *testing.B) {
	c := topo.MustCube(6)
	rng := stats.NewRNG(77)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := faults.NewSet(c)
		if err := faults.InjectIsolating(s, topo.NodeID(rng.Intn(c.Nodes()))); err != nil {
			b.Fatal(err)
		}
		if baseline.LeeHayes(s).SafeCount() != 0 || baseline.WuFernandez(s).SafeCount() != 0 {
			b.Fatal("Theorem 4 violated")
		}
	}
}

// BenchmarkFig4LinkFaults (E8): EGS fixpoint plus the suboptimal route
// of the Section 4.1 scenario.
func BenchmarkFig4LinkFaults(b *testing.B) {
	s := expt.Fig4Set()
	c := s.Cube()
	src, dst := c.MustParse("1101"), c.MustParse("1000")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rt := core.NewRouter(core.Compute(s, core.Options{}), nil)
		if r := rt.Unicast(src, dst); r.Outcome != core.Suboptimal {
			b.Fatal("route should be suboptimal")
		}
	}
}

// BenchmarkFig5Generalized (E9): Definition 4 fixpoint plus the worked
// route in GH(2x3x2).
func BenchmarkFig5Generalized(b *testing.B) {
	g := expt.Fig5Graph()
	src, dst := g.MustParse("010"), g.MustParse("101")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rt := ghcube.NewRouter(ghcube.Compute(g))
		if r := rt.Unicast(src, dst); r.Outcome != core.Optimal {
			b.Fatal("route should be optimal")
		}
	}
}

// BenchmarkCompareRouters (E10): one routed unicast per scheme on a
// fixed 7-cube with 12 faults.
func BenchmarkCompareRouters(b *testing.B) {
	c := topo.MustCube(7)
	rng := stats.NewRNG(1010)
	s := faults.NewSet(c)
	if err := faults.InjectUniform(s, rng, 12); err != nil {
		b.Fatal(err)
	}
	var pairs []struct{ s, d topo.NodeID }
	for len(pairs) < 64 {
		src := topo.NodeID(rng.Intn(c.Nodes()))
		dst := topo.NodeID(rng.Intn(c.Nodes()))
		if s.NodeFaulty(src) || s.NodeFaulty(dst) || src == dst {
			continue
		}
		pairs = append(pairs, struct{ s, d topo.NodeID }{src, dst})
	}
	b.Run("safety-level", func(b *testing.B) {
		rt := core.NewRouter(core.Compute(s, core.Options{}), nil)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p := pairs[i%len(pairs)]
			rt.Unicast(p.s, p.d)
		}
	})
	for _, mk := range []func() baseline.Router{
		func() baseline.Router { return baseline.NewLeeHayesRouter(s) },
		func() baseline.Router { return baseline.NewChiuWuRouter(s) },
		func() baseline.Router { return baseline.NewDFSRouter(s) },
		func() baseline.Router { return baseline.NewSidetrackRouter(s, stats.NewRNG(2)) },
		func() baseline.Router { return baseline.NewFreeDimRouter(s) },
		func() baseline.Router { return baseline.NewOracleRouter(s) },
	} {
		rt := mk()
		b.Run(rt.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p := pairs[i%len(pairs)]
				rt.Route(p.s, p.d)
			}
		})
	}
}

// BenchmarkDistributedGS (E11): the goroutine-per-node GS protocol,
// including engine start/stop, across cube sizes.
func BenchmarkDistributedGS(b *testing.B) {
	for _, n := range []int{4, 6, 8} {
		b.Run(benchName("n", n), func(b *testing.B) {
			c := topo.MustCube(n)
			rng := stats.NewRNG(uint64(n))
			s := faults.NewSet(c)
			if err := faults.InjectUniform(s, rng, n-1); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e := simnet.New(s)
				e.RunGS(0)
				e.Close()
			}
		})
	}
}

// BenchmarkAblations (E12): the tie-break policies head to head on one
// route, isolating the policy cost.
func BenchmarkAblations(b *testing.B) {
	s := expt.Fig1Set()
	c := s.Cube()
	as := core.Compute(s, core.Options{})
	src, dst := c.MustParse("1110"), c.MustParse("0001")
	b.Run("lowest-dim", func(b *testing.B) {
		rt := core.NewRouter(as, core.LowestDim)
		for i := 0; i < b.N; i++ {
			rt.Unicast(src, dst)
		}
	})
	b.Run("highest-dim", func(b *testing.B) {
		rt := core.NewRouter(as, core.HighestDim)
		for i := 0; i < b.N; i++ {
			rt.Unicast(src, dst)
		}
	})
}

// ---------------------------------------------------------------------
// Scaling micro-benchmarks for the core primitives.
// ---------------------------------------------------------------------

// BenchmarkGSByDimension: sequential GS cost as the cube grows (with
// n-1 random faults each).
func BenchmarkGSByDimension(b *testing.B) {
	for _, n := range []int{6, 8, 10, 12} {
		b.Run(benchName("n", n), func(b *testing.B) {
			c := topo.MustCube(n)
			rng := stats.NewRNG(uint64(n) * 31)
			s := faults.NewSet(c)
			if err := faults.InjectUniform(s, rng, n-1); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				core.Compute(s, core.Options{})
			}
		})
	}
}

// BenchmarkUnicastByDimension: routing cost alone (levels precomputed).
func BenchmarkUnicastByDimension(b *testing.B) {
	for _, n := range []int{6, 8, 10, 12} {
		b.Run(benchName("n", n), func(b *testing.B) {
			c := topo.MustCube(n)
			rng := stats.NewRNG(uint64(n) * 17)
			s := faults.NewSet(c)
			if err := faults.InjectUniform(s, rng, n-1); err != nil {
				b.Fatal(err)
			}
			rt := core.NewRouter(core.Compute(s, core.Options{}), nil)
			src := topo.NodeID(0)
			dst := topo.NodeID(c.Nodes() - 1)
			for s.NodeFaulty(src) {
				src++
			}
			for s.NodeFaulty(dst) {
				dst--
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rt.Unicast(src, dst)
			}
		})
	}
}

// BenchmarkLevelFromNeighbors: the Definition 1 evaluation primitive.
func BenchmarkLevelFromNeighbors(b *testing.B) {
	levels := []int{4, 0, 7, 3, 2, 9, 1, 5, 6, 8}
	scratch := make([]int, len(levels))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		core.LevelFromNeighbors(levels, scratch)
	}
}

// BenchmarkFacadeUnicast: the public API path, including the level
// cache.
func BenchmarkFacadeUnicast(b *testing.B) {
	cube := MustNew(8)
	if err := cube.InjectRandomFaults(8, 7); err != nil {
		b.Fatal(err)
	}
	cube.ComputeLevels()
	src, dst := NodeID(1), NodeID(254)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cube.Unicast(src, dst)
	}
}

func benchName(k string, v int) string {
	return k + "=" + itoa(v)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// BenchmarkBroadcast (E13): the safety-level broadcast extension — tree
// construction plus repair on a 7-cube with n-1 faults.
func BenchmarkBroadcast(b *testing.B) {
	c := topo.MustCube(7)
	rng := stats.NewRNG(13)
	s := faults.NewSet(c)
	if err := faults.InjectUniform(s, rng, 6); err != nil {
		b.Fatal(err)
	}
	as := core.Compute(s, core.Options{})
	var src topo.NodeID
	for s.NodeFaulty(src) {
		src++
	}
	bc := broadcast.New(as, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := bc.Broadcast(src)
		if !res.Covered() {
			b.Fatal("broadcast did not cover below n faults")
		}
	}
}

// BenchmarkTraffic (E14): a full concurrent permutation batch through
// the distributed engine on a 6-cube.
func BenchmarkTraffic(b *testing.B) {
	c := topo.MustCube(6)
	rng := stats.NewRNG(14)
	s := faults.NewSet(c)
	if err := faults.InjectUniform(s, rng, 5); err != nil {
		b.Fatal(err)
	}
	e := simnet.New(s)
	defer e.Close()
	e.RunGS(0)
	var pairs []simnet.Pair
	for a := 0; a < c.Nodes() && len(pairs) < e.MaxBatch(); a++ {
		src, dst := topo.NodeID(a), topo.NodeID((a*29+17)%c.Nodes())
		if s.NodeFaulty(src) || s.NodeFaulty(dst) || src == dst {
			continue
		}
		pairs = append(pairs, simnet.Pair{Src: src, Dst: dst})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.UnicastBatch(pairs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAsyncGS (E11b): the quiescence-driven distributed protocol,
// including engine start/stop.
func BenchmarkAsyncGS(b *testing.B) {
	for _, n := range []int{4, 6, 8} {
		b.Run(benchName("n", n), func(b *testing.B) {
			c := topo.MustCube(n)
			rng := stats.NewRNG(uint64(n) * 7)
			s := faults.NewSet(c)
			if err := faults.InjectUniform(s, rng, n-1); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e := simnet.New(s)
				e.RunGSAsync()
				e.Close()
			}
		})
	}
}

// BenchmarkSessionReroute: the mid-flight blockage + recompute +
// reroute cycle of the demand-driven scenario.
func BenchmarkSessionReroute(b *testing.B) {
	c := topo.MustCube(5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := faults.NewSet(c)
		rt := core.NewRouter(core.Compute(s, core.Options{}), nil)
		sess, _, _ := rt.Start(c.MustParse("00000"), c.MustParse("00111"))
		sess.Step()
		s.FailNode(c.MustParse("00011"))
		s.FailNode(c.MustParse("00101"))
		if _, err := sess.Step(); err != core.ErrBlocked {
			b.Fatal("expected blockage")
		}
		if _, out := sess.Reroute(core.Compute(s, core.Options{})); out == core.Failure {
			b.Fatal("reroute failed")
		}
		if ok, err := sess.Run(); !ok || err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGHByShape: Definition 4 fixpoints across generalized
// hypercube shapes of comparable size.
func BenchmarkGHByShape(b *testing.B) {
	shapes := [][]int{
		{2, 2, 2, 2, 2, 2}, // 64 nodes, binary
		{4, 4, 4},          // 64 nodes, radix 4
		{8, 8},             // 64 nodes, radix 8
	}
	for _, shape := range shapes {
		name := ""
		for i, m := range shape {
			if i > 0 {
				name += "x"
			}
			name += itoa(m)
		}
		b.Run(name, func(b *testing.B) {
			rng := stats.NewRNG(99)
			g := ghcube.MustNew(shape...)
			if err := g.InjectUniform(rng, 5); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ghcube.Compute(g)
			}
		})
	}
}

// BenchmarkDistributedBroadcast: the level-ranked tree through the
// goroutine engine on a 7-cube.
func BenchmarkDistributedBroadcast(b *testing.B) {
	c := topo.MustCube(7)
	rng := stats.NewRNG(21)
	s := faults.NewSet(c)
	if err := faults.InjectUniform(s, rng, 6); err != nil {
		b.Fatal(err)
	}
	e := simnet.New(s)
	defer e.Close()
	e.RunGS(0)
	var src topo.NodeID
	for s.NodeFaulty(src) {
		src++
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Broadcast(src); err != nil {
			b.Fatal(err)
		}
	}
}

// newOverheadCube builds the BENCH_1 configuration: a 10-cube with 10%
// (102) random node faults, instrumented or not.
func newOverheadCube(b testing.TB, reg *Registry) (*Cube, NodeID, NodeID) {
	b.Helper()
	c := MustNew(10)
	if err := c.InjectRandomFaults(10, 102); err != nil {
		b.Fatal(err)
	}
	c.Instrument(reg)
	c.ComputeLevels()
	src, dst := NodeID(0), NodeID(c.Nodes()-1)
	for c.NodeFaulty(src) {
		src++
	}
	for c.NodeFaulty(dst) {
		dst--
	}
	return c, src, dst
}

// BenchmarkInstrumentationOverhead proves the nil-registry claim: an
// uninstrumented Cube pays one nil check per decision point, so the
// off/unicast and on/unicast numbers must be within noise of each other
// (the "on" path additionally pays the atomic increments). The gs pair
// toggles a fault each iteration so every ComputeLevels recomputes.
func BenchmarkInstrumentationOverhead(b *testing.B) {
	for _, mode := range []struct {
		name string
		reg  func() *Registry
	}{
		{"off", func() *Registry { return nil }},
		{"on", func() *Registry { return NewRegistry() }},
	} {
		b.Run("unicast/"+mode.name, func(b *testing.B) {
			c, src, dst := newOverheadCube(b, mode.reg())
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.Unicast(src, dst)
			}
		})
		b.Run("gs/"+mode.name, func(b *testing.B) {
			c, src, _ := newOverheadCube(b, mode.reg())
			toggle := src // a nonfaulty node to churn the fault generation
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := c.FailNode(toggle); err != nil {
					b.Fatal(err)
				}
				if err := c.RecoverNode(toggle); err != nil {
					b.Fatal(err)
				}
				c.ComputeLevels()
			}
		})
	}
}
