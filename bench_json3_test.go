package safecube

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"testing"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/topo"
)

// TestEmitBenchJSON3 regenerates BENCH_3.json, the committed measurement
// of incremental GS repair (core.RepairLevels) against cold recomputation
// under fault churn. It shares the BENCH_1/BENCH_2 gate:
//
//	EMIT_BENCH_JSON=1 go test -run TestEmitBenchJSON .
//
// (or `make bench-json`). Each benchmark op replays the same 40-event
// Q10 fail/recover schedule from a fresh fault set, maintaining the
// level table either by repairing the previous fixpoint or by
// recomputing cold after every event; the chaos/differential suites pin
// the two strategies to identical tables, so this file records only what
// the equivalence costs.
func TestEmitBenchJSON3(t *testing.T) {
	if os.Getenv("EMIT_BENCH_JSON") == "" {
		t.Skip("set EMIT_BENCH_JSON=1 to regenerate BENCH_3.json")
	}

	type entry struct {
		Name        string  `json:"name"`
		NsPerOp     float64 `json:"ns_per_op"`
		AllocsPerOp int64   `json:"allocs_per_op"`
		BytesPerOp  int64   `json:"bytes_per_op"`
	}
	bench := func(name string, fn func(b *testing.B)) entry {
		r := testing.Benchmark(fn)
		return entry{
			Name:        name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
	}

	tp := topo.MustCube(10)
	events := faults.ChurnSchedule(tp, 3, 40, faults.ChurnOptions{Links: true})

	// replay runs the whole schedule once, maintaining levels by repair
	// or by cold recomputation, and returns the NODE_STATUS evaluations
	// spent on the maintenance (excluding the initial cold fill).
	replay := func(fatal func(args ...interface{}), repair bool) int {
		set := faults.NewSet(tp)
		prev := core.Compute(set, core.Options{})
		gen := set.Generation()
		evals := 0
		for _, ev := range events {
			if err := set.Apply(ev); err != nil {
				fatal(err)
			}
			if repair {
				delta, ok := set.Since(gen)
				if !ok {
					fatal("journal gap after one event")
				}
				as, ok := core.RepairLevels(prev, set, delta, core.Options{})
				if !ok {
					fatal("repair refused")
				}
				prev = as
			} else {
				prev = core.Compute(set, core.Options{})
			}
			gen = set.Generation()
			evals += prev.Evals()
		}
		return evals
	}
	maintain := func(repair bool) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				replay(b.Fatal, repair)
			}
		}
	}

	repairEvals := replay(t.Fatal, true)
	coldEvals := replay(t.Fatal, false)

	report := struct {
		Config  string  `json:"config"`
		Claim   string  `json:"claim"`
		Results []entry `json:"results"`
	}{
		Config: "Q10 (1024 nodes), 40-event fail/recover schedule with link faults, " +
			"seed 3, GOMAXPROCS=" + strconv.Itoa(runtime.GOMAXPROCS(0)),
		Claim: fmt.Sprintf("core.RepairLevels reconverges from the previous fixpoint through a dirty "+
			"frontier instead of sweeping all nodes: over this schedule it spends %d NODE_STATUS "+
			"evaluations where cold recomputation spends %d (%.1fx), and the chaos suite pins both "+
			"to bit-identical tables", repairEvals, coldEvals, float64(coldEvals)/float64(repairEvals)),
		Results: []entry{
			bench("churn/q10/40-events/cold", maintain(false)),
			bench("churn/q10/40-events/repair", maintain(true)),
		},
	}

	f, err := os.Create("BENCH_3.json")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote BENCH_3.json: %+v", report.Results)
}
