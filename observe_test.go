package safecube

import (
	"strings"
	"sync"
	"testing"
)

// kinds flattens a trace into its event-kind sequence for assertions.
func kinds(tr *RouteTrace) []EventKind {
	out := make([]EventKind, len(tr.Events))
	for i, e := range tr.Events {
		out[i] = e.Kind
	}
	return out
}

func counter(t *testing.T, r *Registry, name string) int64 {
	t.Helper()
	v, ok := r.Snapshot().Counters[name]
	if !ok {
		t.Fatalf("counter %q not in snapshot", name)
	}
	return v
}

// TestTracedRerouteEvents replays the paper's Section 2.2 demand-driven
// scenario under tracing: nodes on the chosen path die mid-flight, the
// message blocks, levels are recomputed, and the unicast is re-admitted
// from the current node. The trace must show the whole story in order:
// optimal admission, a hop, the blockage, the C3 re-admission, and a
// suboptimal delivery.
func TestTracedRerouteEvents(t *testing.T) {
	c := MustNew(5)
	reg := NewRegistry()
	reg.KeepTraces(4)
	c.Instrument(reg)

	sess, tr, cond, out := c.StartUnicastTraced(c.MustParse("00000"), c.MustParse("00111"))
	if cond != CondC1 || out != Optimal {
		t.Fatalf("admission %v/%v, want C1/optimal", cond, out)
	}
	if _, err := sess.Step(); err != nil {
		t.Fatal(err)
	}
	// Both remaining preferred neighbors die; the next Step must block.
	if err := c.FailNamed("00011", "00101"); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Step(); err != ErrBlocked {
		t.Fatalf("want ErrBlocked, got %v", err)
	}
	// State-change-driven recompute + re-admission from 00001: C1/C2 are
	// dead there, so the session detours via a spare neighbor (C3).
	if cond, out := sess.Reroute(); cond != CondC3 || out != Suboptimal {
		t.Fatalf("reroute %v/%v, want C3/suboptimal", cond, out)
	}
	if arrived, err := sess.Run(); !arrived || err != nil {
		t.Fatalf("run: %v %v", arrived, err)
	}

	// The event sequence tells the Section 2.2 story in order.
	got := kinds(tr)
	want := []EventKind{EvAdmit, EvHop, EvBlocked, EvReroute}
	for i, k := range want {
		if i >= len(got) || got[i] != k {
			t.Fatalf("event[%d] = %v, want %v (full: %v)", i, got[i], k, got)
		}
	}
	if got[len(got)-1] != EvDone {
		t.Fatalf("last event %v, want done (full: %v)", got[len(got)-1], got)
	}
	if tr.Events[0].Cond != "C1" || tr.Events[0].Outcome != "optimal" {
		t.Errorf("admit event = %+v", tr.Events[0])
	}
	if re := tr.Events[3]; re.Cond != "C3" || re.Outcome != "suboptimal" {
		t.Errorf("reroute event = %+v", re)
	}
	// The first post-reroute hop is the C3 spare detour.
	if sp := tr.Events[4]; sp.Kind != EvHop || !sp.Spare {
		t.Errorf("post-reroute hop should be spare, got %+v", sp)
	}
	if tr.Outcome != "suboptimal" || tr.Reroutes != 1 {
		t.Errorf("trace outcome %q reroutes %d", tr.Outcome, tr.Reroutes)
	}
	if tr.PathLen != sess.Hops() || tr.Stretch != tr.PathLen-tr.Hamming {
		t.Errorf("trace accounting: len %d stretch %d vs hops %d H %d",
			tr.PathLen, tr.Stretch, sess.Hops(), tr.Hamming)
	}

	// Counters saw the same story.
	for name, want := range map[string]int64{
		MetricBlockedTotal:       1,
		MetricReroutesTotal:      1,
		MetricRerouteAbortsTotal: 0,
		MetricOutcomeSuboptimal:  1,
		MetricSpareHopsTotal:     1,
	} {
		if got := counter(t, reg, name); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	// The finished trace landed in the ring buffer.
	snap := reg.Snapshot()
	if len(snap.Traces) != 1 || snap.Traces[0].Outcome != "suboptimal" {
		t.Errorf("ring buffer: %+v", snap.Traces)
	}
}

// TestTracedRerouteAbort walls the message in mid-flight: the re-admission
// must fail (the paper's abort branch), the trace must end with an abort
// event, and the abort counter must tick.
func TestTracedRerouteAbort(t *testing.T) {
	c := MustNew(4)
	reg := NewRegistry()
	c.Instrument(reg)

	sess, tr, _, out := c.StartUnicastTraced(c.MustParse("0000"), c.MustParse("1111"))
	if out != Optimal {
		t.Fatalf("admission %v", out)
	}
	if _, err := sess.Step(); err != nil {
		t.Fatal(err)
	}
	// Isolate the node currently holding the message.
	at := sess.At()
	for d := 0; d < c.Dim(); d++ {
		if err := c.FailNode(at ^ NodeID(1<<d)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sess.Step(); err != ErrBlocked {
		t.Fatalf("want ErrBlocked, got %v", err)
	}
	if _, out := sess.Reroute(); out != Failure {
		t.Fatalf("reroute from isolated node: %v, want failure", out)
	}
	if sess.Done() {
		t.Error("aborted session must not be done")
	}

	got := kinds(tr)
	want := []EventKind{EvAdmit, EvHop, EvBlocked, EvAbort}
	if len(got) != len(want) {
		t.Fatalf("events %v, want kinds %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if ab := tr.Events[3]; ab.Node != int(at) || ab.Outcome != "failure" {
		t.Errorf("abort event = %+v, want node %d outcome failure", ab, at)
	}
	if counter(t, reg, MetricRerouteAbortsTotal) != 1 {
		t.Error("abort counter did not tick")
	}
	if counter(t, reg, MetricReroutesTotal) != 0 {
		t.Error("a failed re-admission must not count as a reroute")
	}
}

// TestRegistryConcurrentUnicasts hammers one shared registry from many
// goroutines routing on a warm cube, plus a concurrent distributed batch
// on the simnet engine — the counters must neither race (run with -race)
// nor lose increments.
func TestRegistryConcurrentUnicasts(t *testing.T) {
	c := MustNew(6)
	if err := c.InjectRandomFaults(11, 6); err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	c.Instrument(reg)
	c.ComputeLevels() // warm the level cache so routing is read-only

	var pairs []TrafficPair
	for a := 0; len(pairs) < 32; a++ {
		s, d := NodeID(a%c.Nodes()), NodeID((a*37+13)%c.Nodes())
		if s == d || c.NodeFaulty(s) || c.NodeFaulty(d) {
			continue
		}
		pairs = append(pairs, TrafficPair{Src: s, Dst: d})
	}

	const workers = 8
	var wg sync.WaitGroup
	hops := make([]int64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for _, p := range pairs {
				r := c.Unicast(p.Src, p.Dst)
				if r.Err != nil {
					t.Errorf("unicast %v: %v", p, r.Err)
				}
				hops[w] += int64(r.Hops())
			}
		}(w)
	}
	// Meanwhile the goroutine-per-node engine routes the same pairs,
	// feeding the simnet_* counters of the same registry.
	d := c.Distributed()
	d.RunGS()
	st, err := d.UnicastBatch(pairs)
	d.Close()
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	total := int64(workers * len(pairs))
	if got := counter(t, reg, MetricUnicastsTotal); got != total {
		t.Errorf("route_unicasts_total = %d, want %d", got, total)
	}
	var wantHops int64
	for _, h := range hops {
		wantHops += h
	}
	if got := counter(t, reg, MetricHopsTotal); got != wantHops {
		t.Errorf("route_hops_total = %d, want %d", got, wantHops)
	}
	sum := counter(t, reg, MetricOutcomeOptimal) +
		counter(t, reg, MetricOutcomeSuboptimal) +
		counter(t, reg, MetricOutcomeFailure)
	if sum != total {
		t.Errorf("outcome counters sum to %d, want %d", sum, total)
	}
	if got := counter(t, reg, "simnet_delivered_total"); got != int64(st.Delivered) {
		t.Errorf("simnet_delivered_total = %d, want %d", got, st.Delivered)
	}
	// Every admission hit the warm cache; only the explicit warm-up (and
	// the engine handoff) missed.
	if got := counter(t, reg, MetricLevelsCacheHits); got < total {
		t.Errorf("cache hits = %d, want >= %d", got, total)
	}
	if got := counter(t, reg, MetricLevelsCacheMisses); got != 1 {
		t.Errorf("cache misses = %d, want 1", got)
	}
}

// TestCacheInvalidationByGeneration covers the fault-generation cache:
// repeated ComputeLevels hit, any fault mutation misses exactly once, and
// a Distributed KillNode (shared fault set) invalidates the owner too.
func TestCacheInvalidationByGeneration(t *testing.T) {
	c := MustNew(5)
	reg := NewRegistry()
	c.Instrument(reg)

	c.ComputeLevels()
	c.ComputeLevels()
	c.ComputeLevels()
	if h, m := counter(t, reg, MetricLevelsCacheHits), counter(t, reg, MetricLevelsCacheMisses); h != 2 || m != 1 {
		t.Fatalf("hits %d misses %d, want 2/1", h, m)
	}
	if err := c.FailNamed("00001"); err != nil {
		t.Fatal(err)
	}
	lv := c.ComputeLevels()
	if got := lv.Level(c.MustParse("00001")); got != 0 {
		t.Fatalf("stale levels after fault: S(00001) = %d", got)
	}
	if m := counter(t, reg, MetricLevelsCacheMisses); m != 2 {
		t.Fatalf("misses = %d, want 2", m)
	}
	// RecoverNode and FailLink advance the generation too.
	if err := c.RecoverNode(c.MustParse("00001")); err != nil {
		t.Fatal(err)
	}
	c.ComputeLevels()
	if err := c.FailLink(c.MustParse("00000"), c.MustParse("00001")); err != nil {
		t.Fatal(err)
	}
	c.ComputeLevels()
	if m := counter(t, reg, MetricLevelsCacheMisses); m != 4 {
		t.Fatalf("misses = %d, want 4", m)
	}

	// A kill through the Distributed facade shares the fault set, so the
	// Cube's cache must invalidate without any manual staleness flag.
	d := c.Distributed()
	defer d.Close()
	d.RunGS()
	if err := d.KillNode(c.MustParse("11111")); err != nil {
		t.Fatal(err)
	}
	lv = c.ComputeLevels()
	if got := lv.Level(c.MustParse("11111")); got != 0 {
		t.Errorf("cache survived a Distributed kill: S(11111) = %d", got)
	}
}

// TestTraceFormatTranscript pins the human-readable transcript shape the
// README documents.
func TestTraceFormatTranscript(t *testing.T) {
	c := fig1Cube(t)
	_, tr := c.UnicastTraced(c.MustParse("1110"), c.MustParse("0001"))
	text := tr.Format(func(a int) string { return c.Format(NodeID(a)) })
	for _, want := range []string{
		"trace 1110 -> 0001 (H = 4)",
		"admit   at 1110: H=4 S=4 -> C1 (optimal)",
		"hop     1110 -> 1111 dim 0 (preferred, neighbor level",
		"done    optimal at 0001",
		"outcome optimal via C1: 4 hops vs H = 4 (stretch 0, reroutes 0)",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("transcript missing %q:\n%s", want, text)
		}
	}
	// Tracing works on an uninstrumented cube too (throwaway registry).
	if tr == nil || len(tr.Events) == 0 {
		t.Fatal("no trace recorded")
	}
}

// TestTracedFailureAdmission: a cross-partition request fails at the
// source; the trace must carry the failure admission and a done event,
// and UnicastTraced must agree with Unicast.
func TestTracedFailureAdmission(t *testing.T) {
	c := MustNew(4)
	if err := c.FailNamed("0110", "1010", "1100", "1111"); err != nil {
		t.Fatal(err)
	}
	r, tr := c.UnicastTraced(c.MustParse("0111"), c.MustParse("1110"))
	if r.Outcome != Failure {
		t.Fatalf("outcome %v", r.Outcome)
	}
	got := kinds(tr)
	if len(got) != 2 || got[0] != EvAdmit || got[1] != EvDone {
		t.Fatalf("failure trace events %v, want [admit done]", got)
	}
	if tr.Outcome != "failure" || tr.PathLen != 0 {
		t.Errorf("trace = %+v", tr)
	}
}
