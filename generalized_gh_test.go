package safecube

import (
	"strings"
	"testing"
)

// TestGHInstrumentedUnicast is the tentpole's acceptance check: a
// generalized hypercube instrumented with the same Registry as a binary
// Cube records route traces, admission/outcome counters, GS run
// telemetry, and level-cache hits — none of which existed on the old
// ghcube-backed facade.
func TestGHInstrumentedUnicast(t *testing.T) {
	g := MustNewGeneralized(2, 3, 2)
	reg := NewRegistry()
	reg.KeepTraces(4)
	g.Instrument(reg)
	if g.Registry() != reg {
		t.Fatal("Registry() should return the attached registry")
	}
	if err := g.FailNamed("011", "100", "111", "121"); err != nil {
		t.Fatal(err)
	}

	s, d := g.MustParse("010"), g.MustParse("101")
	r, tr := g.UnicastTraced(s, d)
	if r.Outcome != Optimal || r.Hops() != 3 {
		t.Fatalf("route = %v/%d hops, want optimal/3", r.Outcome, r.Hops())
	}
	if tr == nil || tr.Source != int(s) || tr.Dest != int(d) || tr.Hamming != 3 {
		t.Fatalf("trace header = %+v", tr)
	}
	if len(tr.Events) == 0 || tr.Events[0].Kind != EvAdmit || tr.Events[len(tr.Events)-1].Kind != EvDone {
		t.Fatalf("trace should run admit..done, got %v", kinds(tr))
	}
	if tr.Outcome != "optimal" || tr.PathLen != 3 || tr.Stretch != 0 {
		t.Errorf("trace accounting = %+v", tr)
	}
	// Format must render GH digit strings via the topology, not raw ints.
	if s := tr.Format(func(a int) string { return g.Format(GNodeID(a)) }); !strings.Contains(s, "010") {
		t.Errorf("formatted trace missing GH address:\n%s", s)
	}

	// A second unicast reuses the cached assignment.
	if r := g.Unicast(s, d); r.Outcome != Optimal {
		t.Fatalf("second unicast = %v", r.Outcome)
	}
	for name, want := range map[string]int64{
		MetricUnicastsTotal:     2,
		MetricOutcomeOptimal:    2,
		MetricHopsTotal:         6,
		MetricGSRunsTotal:       1,
		MetricLevelsCacheMisses: 1,
		MetricLevelsCacheHits:   1,
	} {
		if got := counter(t, reg, name); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	gs := reg.LastGS()
	if gs == nil || gs.Kind != "sequential" || gs.Dim != 3 || gs.NodeFaults != 4 {
		t.Fatalf("GS trace = %+v", gs)
	}
	if gs.Rounds != g.ComputeLevels().Rounds() {
		t.Errorf("GS trace rounds %d != assignment rounds %d", gs.Rounds, g.ComputeLevels().Rounds())
	}
}

// TestGHFailLinkRouting checks Section 4.1 link faults on a generalized
// hypercube: both ends of a faulty link expose safety level 0 to their
// neighbors while routing with their own (higher) level, and a unicast
// across the dead link detours through a spare dimension at the paper's
// two extra hops.
func TestGHFailLinkRouting(t *testing.T) {
	g := MustNewGeneralized(3, 3)
	a, b := g.MustParse("00"), g.MustParse("01")
	if err := g.FailLink(a, b); err != nil {
		t.Fatal(err)
	}
	if !g.LinkFaulty(a, b) || !g.LinkFaulty(b, a) {
		t.Fatal("link should be faulty in both directions")
	}
	if g.LinkFaults() != 1 || g.NodeFaults() != 0 {
		t.Fatalf("faults = %d links %d nodes", g.LinkFaults(), g.NodeFaults())
	}

	lv := g.ComputeLevels()
	if err := lv.Verify(); err != nil {
		t.Error(err)
	}
	for _, end := range []GNodeID{a, b} {
		if lv.Level(end) != 0 {
			t.Errorf("public level of %s = %d, want 0", g.Format(end), lv.Level(end))
		}
		if lv.OwnLevel(end) == 0 {
			t.Errorf("own level of %s should stay positive", g.Format(end))
		}
	}

	r := g.Unicast(a, b)
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if r.Outcome != Suboptimal || r.Condition != CondC3 || r.Hops() != 3 {
		t.Fatalf("route = %v/%v/%d hops, want suboptimal/C3/3", r.Outcome, r.Condition, r.Hops())
	}
	for i := 1; i < len(r.Path); i++ {
		if g.LinkFaulty(r.Path[i-1], r.Path[i]) {
			t.Fatalf("path %s crosses the dead link", r.PathString(g))
		}
	}
}

// TestGHRecoverNode checks the repair half of the Section 2.2 dynamic
// fault model on a GH cube: recovering a node invalidates the cached
// assignment and restores every node to the safe level.
func TestGHRecoverNode(t *testing.T) {
	g := MustNewGeneralized(3, 3)
	center := g.MustParse("11")
	if err := g.FailNode(center); err != nil {
		t.Fatal(err)
	}
	// Definition 4 takes the minimum over each dimension's siblings, so a
	// lone fault in a radix-3 cube lowers no healthy node — but the
	// faulty node itself reads 0 and leaves the safe set.
	if lv := g.ComputeLevels(); lv.Level(center) != 0 || len(lv.SafeSet()) != g.Nodes()-1 {
		t.Fatalf("faulty level = %d, safe set = %d", lv.Level(center), len(lv.SafeSet()))
	}
	if err := g.RecoverNode(center); err != nil {
		t.Fatal(err)
	}
	if g.NodeFaulty(center) || g.NodeFaults() != 0 {
		t.Fatal("node should be healthy after recovery")
	}
	lv := g.ComputeLevels()
	if len(lv.SafeSet()) != g.Nodes() {
		t.Fatalf("fault-free safe set = %d, want %d", len(lv.SafeSet()), g.Nodes())
	}
	if lv.Rounds() != 0 {
		t.Errorf("fault-free GS rounds = %d, want 0", lv.Rounds())
	}
	if err := g.RecoverNode(center); err != nil {
		t.Errorf("recovering a healthy node is an idempotent no-op, got %v", err)
	}
	if err := g.RecoverNode(GNodeID(99)); err == nil {
		t.Error("recovering an out-of-range node should error")
	}
}

// TestGHSessionReroute drives a step-wise GH unicast through a
// mid-flight fault: the session blocks, levels are recomputed, and the
// re-admitted message still arrives — the binary RouteSession feature
// set carried to generalized cubes by the shared core.
func TestGHSessionReroute(t *testing.T) {
	g := MustNewGeneralized(3, 3, 3)
	s, d := g.MustParse("000"), g.MustParse("111")

	sess, cond, out := g.StartUnicast(s, d)
	if sess == nil || cond != CondC1 || out != Optimal {
		t.Fatalf("admission = %v/%v", cond, out)
	}
	if _, err := sess.Step(); err != nil {
		t.Fatal(err)
	}
	// Kill every neighbor that advances toward the destination from the
	// current node; the next Step must report the blockage.
	at := sess.At()
	for i := 0; i < g.Dim(); i++ {
		if ci, di := g.t.Coord(at, i), g.t.Coord(d, i); ci != di {
			if next := g.t.WithCoord(at, i, di); next != d {
				if err := g.FailNode(next); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if _, err := sess.Step(); err != ErrBlocked {
		t.Fatalf("want ErrBlocked, got %v", err)
	}
	if cond, out := sess.Reroute(); out == Failure {
		t.Fatalf("reroute failed: %v/%v", cond, out)
	}
	if arrived, err := sess.Run(); !arrived || err != nil {
		t.Fatalf("run: %v %v", arrived, err)
	}
	if !sess.Done() || sess.At() != d || sess.Reroutes() != 1 {
		t.Fatalf("session end state: at %s, reroutes %d", g.Format(sess.At()), sess.Reroutes())
	}
	path := sess.Path()
	if path[0] != s || path[len(path)-1] != d || sess.Hops() != len(path)-1 {
		t.Fatalf("path = %v", path)
	}
	for i := 1; i < len(path); i++ {
		if !g.t.Adjacent(path[i-1], path[i]) {
			t.Fatalf("non-adjacent hop %s -> %s", g.Format(path[i-1]), g.Format(path[i]))
		}
	}
}
