package safecube

import (
	"encoding/json"
	"os"
	"runtime"
	"strconv"
	"testing"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/stats"
	"repro/internal/topo"
)

// TestEmitBenchJSON2 regenerates BENCH_2.json, the committed measurement
// of the worker-pool GS sweep (core.Options.Workers) against the
// sequential baseline, on both a binary and a generalized hypercube. It
// shares the BENCH_1 gate:
//
//	EMIT_BENCH_JSON=1 go test -run TestEmitBenchJSON .
//
// (or `make bench-json`). The parallel sweep is bit-identical to the
// sequential one (see core's TestParallelMatchesSequential); this file
// records what that determinism costs or buys on the build machine.
func TestEmitBenchJSON2(t *testing.T) {
	if os.Getenv("EMIT_BENCH_JSON") == "" {
		t.Skip("set EMIT_BENCH_JSON=1 to regenerate BENCH_2.json")
	}

	type entry struct {
		Name        string  `json:"name"`
		NsPerOp     float64 `json:"ns_per_op"`
		AllocsPerOp int64   `json:"allocs_per_op"`
		BytesPerOp  int64   `json:"bytes_per_op"`
	}
	bench := func(name string, fn func(b *testing.B)) entry {
		r := testing.Benchmark(fn)
		return entry{
			Name:        name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
	}

	compute := func(t topo.Topology, faultCount int, workers int) func(b *testing.B) {
		return func(b *testing.B) {
			s := faults.NewSet(t)
			if err := faults.InjectUniform(s, stats.NewRNG(12), faultCount); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				core.Compute(s, core.Options{Workers: workers})
			}
		}
	}

	q12 := topo.MustCube(12)
	gh := topo.MustMixed(4, 4, 4, 4, 4)
	report := struct {
		Config  string  `json:"config"`
		Claim   string  `json:"claim"`
		Results []entry `json:"results"`
	}{
		Config: "Q12 (4096 nodes, 2n faults) and GH(4x4x4x4x4) (1024 nodes, 2n faults), " +
			"seed 12, GOMAXPROCS=" + strconv.Itoa(runtime.GOMAXPROCS(0)),
		Claim: "Options.Workers partitions each GS round into contiguous chunks with " +
			"per-worker delta partials; the result is bit-identical to sequential, so " +
			"any speedup is free (single-core machines see parity, not regression)",
		Results: []entry{
			bench("gs/q12/sequential", compute(q12, 24, 0)),
			bench("gs/q12/workers=gomaxprocs", compute(q12, 24, -1)),
			bench("gs/gh4^5/sequential", compute(gh, 10, 0)),
			bench("gs/gh4^5/workers=gomaxprocs", compute(gh, 10, -1)),
		},
	}

	f, err := os.Create("BENCH_2.json")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote BENCH_2.json: %+v", report.Results)
}
