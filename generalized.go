package safecube

import (
	"repro/internal/ghcube"
	"repro/internal/stats"
)

// GNodeID identifies a node of a generalized hypercube in mixed-radix
// row-major order (dimension 0 is the least significant digit).
type GNodeID = ghcube.NodeID

// Generalized is a faulty generalized hypercube GH(m_{n-1} x ... x m_0)
// with Definition 4 safety levels (Section 4.2). Along each dimension i
// the m_i nodes sharing all other coordinates are fully connected, so
// every dimension is crossed in one hop and the distance between two
// nodes is the number of differing coordinates.
type Generalized struct {
	g     *ghcube.Graph
	as    *ghcube.Assignment
	stale bool
}

// NewGeneralized builds GH with the given per-dimension radixes, listed
// from dimension 0 upward (NewGeneralized(2, 3, 2) is the paper's
// 2 x 3 x 2 example). Every radix must be at least 2.
func NewGeneralized(radix ...int) (*Generalized, error) {
	g, err := ghcube.New(radix)
	if err != nil {
		return nil, err
	}
	return &Generalized{g: g, stale: true}, nil
}

// MustNewGeneralized is NewGeneralized that panics on bad radixes.
func MustNewGeneralized(radix ...int) *Generalized {
	g, err := NewGeneralized(radix...)
	if err != nil {
		panic(err)
	}
	return g
}

// Dim returns the number of dimensions.
func (g *Generalized) Dim() int { return g.g.Dim() }

// Nodes returns the total node count.
func (g *Generalized) Nodes() int { return g.g.Nodes() }

// Parse converts a digit-string address ("021") to a GNodeID.
func (g *Generalized) Parse(addr string) (GNodeID, error) { return g.g.Parse(addr) }

// MustParse is Parse that panics on malformed input.
func (g *Generalized) MustParse(addr string) GNodeID { return g.g.MustParse(addr) }

// Format renders a node as its digit string.
func (g *Generalized) Format(a GNodeID) string { return g.g.Format(a) }

// FailNode marks a node faulty.
func (g *Generalized) FailNode(a GNodeID) error {
	g.stale = true
	return g.g.FailNode(a)
}

// FailNamed marks the nodes with the given digit-string addresses faulty.
func (g *Generalized) FailNamed(addrs ...string) error {
	for _, s := range addrs {
		a, err := g.Parse(s)
		if err != nil {
			return err
		}
		if err := g.FailNode(a); err != nil {
			return err
		}
	}
	return nil
}

// InjectRandomFaults fails exactly count healthy nodes uniformly using
// the deterministic generator seeded by seed.
func (g *Generalized) InjectRandomFaults(seed uint64, count int) error {
	g.stale = true
	return g.g.InjectUniform(stats.NewRNG(seed), count)
}

// NodeFaulty reports whether a node is faulty.
func (g *Generalized) NodeFaulty(a GNodeID) bool { return g.g.NodeFaulty(a) }

// Distance returns the number of coordinates in which two nodes differ.
func (g *Generalized) Distance(a, b GNodeID) int { return g.g.Distance(a, b) }

// GLevels is a computed Definition 4 assignment.
type GLevels struct {
	as *ghcube.Assignment
}

// ComputeLevels runs the extended GS algorithm to its fixpoint.
func (g *Generalized) ComputeLevels() *GLevels {
	if g.stale || g.as == nil {
		g.as = ghcube.Compute(g.g)
		g.stale = false
	}
	return &GLevels{as: g.as}
}

// Level returns S(a).
func (l *GLevels) Level(a GNodeID) int { return l.as.Level(a) }

// Rounds returns the rounds until stabilization (at most n-1).
func (l *GLevels) Rounds() int { return l.as.Rounds() }

// SafeSet returns the nodes at the maximum level n.
func (l *GLevels) SafeSet() []GNodeID { return l.as.SafeSet() }

// Verify checks the Definition 4 fixpoint condition at every node.
func (l *GLevels) Verify() error { return l.as.Verify() }

// GRoute is the result of a generalized-hypercube unicast.
type GRoute struct {
	Source, Dest GNodeID
	// Distance is the number of differing coordinates.
	Distance  int
	Outcome   Outcome
	Condition Condition
	Path      []GNodeID
	Err       error
}

// Hops returns the number of links traveled.
func (r *GRoute) Hops() int {
	if len(r.Path) == 0 {
		return 0
	}
	return len(r.Path) - 1
}

// PathString renders the path in figure notation.
func (r *GRoute) PathString(g *Generalized) string {
	return ghcube.Path(r.Path).FormatWith(g.g)
}

// Unicast routes a message from s to d, computing levels if needed.
func (g *Generalized) Unicast(s, d GNodeID) *GRoute {
	lv := g.ComputeLevels()
	r := ghcube.NewRouter(lv.as).Unicast(s, d)
	return &GRoute{
		Source:    r.Source,
		Dest:      r.Dest,
		Distance:  r.Distance,
		Outcome:   r.Outcome,
		Condition: r.Condition,
		Path:      append([]GNodeID(nil), r.Path...),
		Err:       r.Err,
	}
}

// Feasibility evaluates the admission conditions without routing.
func (g *Generalized) Feasibility(s, d GNodeID) (Condition, Outcome) {
	lv := g.ComputeLevels()
	return ghcube.NewRouter(lv.as).Feasibility(s, d)
}

// Connected reports whether all nonfaulty nodes of the generalized
// hypercube form one component.
func (g *Generalized) Connected() bool { return g.g.Connected() }
