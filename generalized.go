package safecube

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/topo"
)

// GNodeID identifies a node of a generalized hypercube in mixed-radix
// row-major order (dimension 0 is the least significant digit).
type GNodeID = topo.NodeID

// Generalized is a faulty generalized hypercube GH(m_{n-1} x ... x m_0)
// with Definition 4 safety levels (Section 4.2). Along each dimension i
// the m_i nodes sharing all other coordinates are fully connected, so
// every dimension is crossed in one hop and the distance between two
// nodes is the number of differing coordinates.
//
// Since the levels and the router come from the same generic core as
// the binary Cube, the full feature surface carries over: link faults
// (EGS), node recovery, generation-keyed level caching, step-wise route
// sessions, and opt-in instrumentation via Instrument.
type Generalized struct {
	t   *topo.Mixed
	set *faults.Set
	// as is the cached level assignment, valid while asGen matches the
	// fault set's mutation generation (see Cube.ComputeLevels).
	as    *core.Assignment
	asGen uint64

	// Observability (nil when not instrumented; see Instrument).
	reg          *obs.Registry
	routeObs     *obs.RouteObserver
	cacheHits    *obs.Counter
	cacheMisses  *obs.Counter
	cacheRepairs *obs.Counter
}

// NewGeneralized builds GH with the given per-dimension radixes, listed
// from dimension 0 upward (NewGeneralized(2, 3, 2) is the paper's
// 2 x 3 x 2 example). Every radix must be at least 2.
func NewGeneralized(radix ...int) (*Generalized, error) {
	t, err := topo.NewMixed(radix)
	if err != nil {
		return nil, err
	}
	return &Generalized{t: t, set: faults.NewSet(t)}, nil
}

// ParseRadix converts a shape string in the paper's notation
// ("2x3x2", dimension n-1 first) to the dimension-0-first radix slice
// NewGeneralized takes.
func ParseRadix(shape string) ([]int, error) {
	parts := strings.Split(shape, "x")
	radix := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad radix %q: %v", p, err)
		}
		radix[len(parts)-1-i] = v
	}
	return radix, nil
}

// MustNewGeneralized is NewGeneralized that panics on bad radixes.
func MustNewGeneralized(radix ...int) *Generalized {
	g, err := NewGeneralized(radix...)
	if err != nil {
		panic(err)
	}
	return g
}

// Dim returns the number of dimensions.
func (g *Generalized) Dim() int { return g.t.Dim() }

// Nodes returns the total node count.
func (g *Generalized) Nodes() int { return g.t.Nodes() }

// Radix returns m_i, the number of coordinate values in dimension i.
func (g *Generalized) Radix(i int) int { return g.t.Radix(i) }

// Parse converts a digit-string address ("021") to a GNodeID.
func (g *Generalized) Parse(addr string) (GNodeID, error) { return g.t.Parse(addr) }

// MustParse is Parse that panics on malformed input.
func (g *Generalized) MustParse(addr string) GNodeID { return g.t.MustParse(addr) }

// Format renders a node as its digit string.
func (g *Generalized) Format(a GNodeID) string { return g.t.Format(a) }

// FailNode marks a node faulty.
func (g *Generalized) FailNode(a GNodeID) error { return g.set.FailNode(a) }

// FailNodes marks several nodes faulty.
func (g *Generalized) FailNodes(nodes ...GNodeID) error { return g.set.FailNodes(nodes...) }

// FailNamed marks the nodes with the given digit-string addresses faulty.
func (g *Generalized) FailNamed(addrs ...string) error {
	for _, s := range addrs {
		a, err := g.Parse(s)
		if err != nil {
			return err
		}
		if err := g.FailNode(a); err != nil {
			return err
		}
	}
	return nil
}

// RecoverNode marks a previously-failed node healthy again; the next
// ComputeLevels recomputes the assignment (the paper's demand-driven GS
// under recovery, Section 2.2).
func (g *Generalized) RecoverNode(a GNodeID) error { return g.set.RecoverNode(a) }

// FailLink marks the undirected link between two adjacent nodes faulty
// (Section 4.1 carried to Section 4.2 cubes). Safety levels switch to
// the EGS computation: both end nodes expose level 0 to their neighbors
// but keep routing with their own level.
func (g *Generalized) FailLink(a, b GNodeID) error { return g.set.FailLink(a, b) }

// LinkFaulty reports whether the undirected link (a, b) is faulty.
func (g *Generalized) LinkFaulty(a, b GNodeID) bool { return g.set.LinkFaulty(a, b) }

// InjectRandomFaults fails exactly count healthy nodes uniformly using
// the deterministic generator seeded by seed.
func (g *Generalized) InjectRandomFaults(seed uint64, count int) error {
	return faults.InjectUniform(g.set, stats.NewRNG(seed), count)
}

// NodeFaulty reports whether a node is faulty.
func (g *Generalized) NodeFaulty(a GNodeID) bool { return g.set.NodeFaulty(a) }

// NodeFaults returns the number of faulty nodes.
func (g *Generalized) NodeFaults() int { return g.set.NodeFaults() }

// LinkFaults returns the number of faulty links.
func (g *Generalized) LinkFaults() int { return g.set.LinkFaults() }

// Distance returns the number of coordinates in which two nodes differ.
func (g *Generalized) Distance(a, b GNodeID) int { return g.t.Distance(a, b) }

// GLevels is a computed Definition 4 assignment.
type GLevels struct {
	as *core.Assignment
}

// ComputeLevels runs the generic GS algorithm (EGS when link faults are
// present) to its Definition 4 fixpoint. Like Cube.ComputeLevels the
// result is cached keyed on the fault set's mutation generation, a stale
// entry is incrementally repaired when the delta journal allows it, and
// on an instrumented cube every call counts a cache hit or miss (a
// repair counts as a miss plus a repairs counter) and every
// recomputation records a GSTrace.
func (g *Generalized) ComputeLevels() *GLevels {
	gen := g.set.Generation()
	if g.as != nil && g.asGen == gen {
		g.cacheHits.Inc()
		return &GLevels{as: g.as}
	}
	g.cacheMisses.Inc()
	repaired := false
	if g.as != nil {
		if delta, ok := g.set.Since(g.asGen); ok {
			if as, ok := core.RepairLevels(g.as, g.set, delta, core.Options{}); ok {
				g.as, repaired = as, true
				g.cacheRepairs.Inc()
			}
		}
	}
	if !repaired {
		g.as = core.Compute(g.set, core.Options{})
	}
	g.asGen = gen
	if g.reg != nil {
		g.recordGS()
	}
	return &GLevels{as: g.as}
}

// recordGS publishes the cost of the sequential GS run or incremental
// repair that just ended.
func (g *Generalized) recordGS() {
	deltas := g.as.Deltas()
	changes := 0
	for _, d := range deltas {
		changes += d
	}
	g.reg.Counter(obs.MetricGSRunsTotal).Inc()
	g.reg.Gauge(obs.MetricGSLastRounds).Set(int64(g.as.Rounds()))
	g.reg.Histogram(obs.MetricGSRoundsHist).Observe(int64(g.as.Rounds()))
	g.reg.Counter(obs.MetricGSLevelChangesTotal).Add(int64(changes))
	tr := &obs.GSTrace{
		Kind:       "sequential",
		Topo:       g.t.String(),
		Dim:        g.Dim(),
		NodeFaults: g.set.NodeFaults(),
		LinkFaults: g.set.LinkFaults(),
		Rounds:     g.as.Rounds(),
		Deltas:     deltas,
		TableBytes: g.as.TableBytes(),
	}
	if g.as.Repaired() {
		tr.Kind = "repair"
		tr.DirtyNodes = g.as.DirtyNodes()
		tr.Evals = g.as.Evals()
		g.reg.Gauge(obs.MetricGSRepairRounds).Set(int64(g.as.Rounds()))
		g.reg.Counter(obs.MetricGSRepairDirtyNodes).Add(int64(g.as.DirtyNodes()))
		g.reg.Counter(obs.MetricGSRepairEvals).Add(int64(g.as.Evals()))
	}
	g.reg.RecordGS(tr)
}

// Level returns S(a) as observed by a's neighbors (0 for faulty nodes
// and nodes with an adjacent faulty link).
func (l *GLevels) Level(a GNodeID) int { return l.as.Level(a) }

// OwnLevel returns node a's own view of its level; it differs from
// Level only for nodes with adjacent faulty links.
func (l *GLevels) OwnLevel(a GNodeID) int { return l.as.OwnLevel(a) }

// Rounds returns the rounds until stabilization (at most n-1).
func (l *GLevels) Rounds() int { return l.as.Rounds() }

// Safe reports whether a has the maximum level n.
func (l *GLevels) Safe(a GNodeID) bool { return l.as.Safe(a) }

// SafeSet returns the nodes at the maximum level n.
func (l *GLevels) SafeSet() []GNodeID { return l.as.SafeSet() }

// Verify checks the Definition 4 fixpoint condition at every node.
func (l *GLevels) Verify() error { return l.as.Verify() }

// GRoute is the result of a generalized-hypercube unicast.
type GRoute struct {
	Source, Dest GNodeID
	// Distance is the number of differing coordinates.
	Distance  int
	Outcome   Outcome
	Condition Condition
	Path      []GNodeID
	Err       error
}

// Hops returns the number of links traveled.
func (r *GRoute) Hops() int {
	if len(r.Path) == 0 {
		return 0
	}
	return len(r.Path) - 1
}

// PathString renders the path in figure notation.
func (r *GRoute) PathString(g *Generalized) string {
	return topo.Path(r.Path).FormatWith(g.t)
}

func gRouteOf(r *core.Route) *GRoute {
	return &GRoute{
		Source:    r.Source,
		Dest:      r.Dest,
		Distance:  r.Hamming,
		Outcome:   r.Outcome,
		Condition: r.Condition,
		Path:      append([]GNodeID(nil), r.Path...),
		Err:       r.Err,
	}
}

// Unicast routes a message from s to d, computing levels if needed.
func (g *Generalized) Unicast(s, d GNodeID) *GRoute {
	lv := g.ComputeLevels()
	return gRouteOf(core.NewRouter(lv.as, nil).Observe(g.routeObs).Unicast(s, d))
}

// Feasibility evaluates the admission conditions without routing.
func (g *Generalized) Feasibility(s, d GNodeID) (Condition, Outcome) {
	lv := g.ComputeLevels()
	return core.NewRouter(lv.as, nil).Feasibility(s, d)
}

// Connected reports whether all nonfaulty nodes of the generalized
// hypercube form one component.
func (g *Generalized) Connected() bool { return faults.Connected(g.set) }

// Instrument attaches a registry to the generalized cube: level
// (re)computations, cache hits/misses, unicast admissions, hops,
// reroutes and outcomes are counted exactly as on a binary Cube.
// Instrument(nil) detaches. Returns the cube for chaining.
func (g *Generalized) Instrument(r *Registry) *Generalized {
	g.reg = r
	g.routeObs = r.RouteObserver()
	g.cacheHits = r.Counter(obs.MetricLevelsCacheHits)
	g.cacheMisses = r.Counter(obs.MetricLevelsCacheMisses)
	g.cacheRepairs = r.Counter(obs.MetricLevelsCacheRepairs)
	return g
}

// Registry returns the attached registry (nil when uninstrumented).
func (g *Generalized) Registry() *Registry { return g.reg }

// traceObserver builds a single-use traced observer for one unicast,
// backed by the cube's registry (or a throwaway one, so tracing works on
// uninstrumented cubes too).
func (g *Generalized) traceObserver(s, d GNodeID) *obs.RouteObserver {
	ro := g.routeObs
	if ro == nil {
		ro = obs.NewRegistry().RouteObserver()
	}
	return ro.WithTraceGen(int(s), int(d), g.t.Distance(s, d), g.set.Generation())
}

// UnicastTraced routes like Unicast and additionally records the full
// decision trace: the admission condition that held, every hop with its
// dimension and preferred-vs-spare role, and the final outcome with path
// length vs distance. Tracing allocates per event; use Unicast on hot
// paths.
func (g *Generalized) UnicastTraced(s, d GNodeID) (*GRoute, *RouteTrace) {
	lv := g.ComputeLevels()
	ro := g.traceObserver(s, d)
	r := core.NewRouter(lv.as, nil).Observe(ro).Unicast(s, d)
	return gRouteOf(r), ro.Trace()
}

// GRouteSession is an in-flight generalized-hypercube unicast advancing
// one hop per Step — the same demand-driven Section 2.2 machinery as
// the binary RouteSession.
type GRouteSession struct {
	sess *core.Session
	g    *Generalized
}

// StartUnicast admits a unicast from s to d and returns the session.
// On Failure the session is nil (the message never leaves the source).
func (g *Generalized) StartUnicast(s, d GNodeID) (*GRouteSession, Condition, Outcome) {
	lv := g.ComputeLevels()
	sess, cond, out := core.NewRouter(lv.as, nil).Observe(g.routeObs).Start(s, d)
	if sess == nil {
		return nil, cond, out
	}
	return &GRouteSession{sess: sess, g: g}, cond, out
}

// Step advances the message one hop, returning true on arrival.
// ErrBlocked means new faults cut the chosen directions; call Reroute.
func (rs *GRouteSession) Step() (bool, error) { return rs.sess.Step() }

// Run drives the session until arrival or blockage.
func (rs *GRouteSession) Run() (bool, error) { return rs.sess.Run() }

// Reroute recomputes the safety levels from the current fault state and
// re-admits the unicast from the node currently holding the message.
func (rs *GRouteSession) Reroute() (Condition, Outcome) {
	lv := rs.g.ComputeLevels()
	return rs.sess.Reroute(lv.as)
}

// Done reports whether the message has arrived.
func (rs *GRouteSession) Done() bool { return rs.sess.Done() }

// At returns the node currently holding the message.
func (rs *GRouteSession) At() GNodeID { return rs.sess.At() }

// Path returns the walk traveled so far.
func (rs *GRouteSession) Path() []GNodeID { return rs.sess.Path() }

// Hops returns the hops traveled so far.
func (rs *GRouteSession) Hops() int { return rs.sess.Hops() }

// Reroutes returns how many re-admissions the session needed.
func (rs *GRouteSession) Reroutes() int { return rs.sess.Reroutes() }
